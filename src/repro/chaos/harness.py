"""The chaos/soak harness: boot a real fleet, hurt it, prove invariants.

:func:`run_chaos` boots a genuine :class:`~repro.shard.ShardedServer`
(real worker processes, real sockets), drives a steady request load at
it from a real :class:`~repro.server.client.ReproClient`, applies a
seeded fault timeline (:mod:`repro.chaos.schedule`) from a side thread,
and checks the tier's core promises the whole way through:

1. **Byte identity** -- every successful batch response over the whole
   soak is byte-identical to a fault-free oracle run
   (:class:`~repro.service.engine.BatchEngine` directly, no server).
   Kills, reroutes, respawns, and replays may cost latency; they may
   never cost bytes.
2. **No accepted request lost** -- a 200 response always carries every
   record of its batch (implied by the byte comparison; short responses
   are mismatches).
3. **Counter conservation** -- the router's ``requests_routed`` counter
   equals the number of requests the harness saw succeed, across every
   respawn (router-side counters must not reset when workers die).
4. **Readyz truthfulness** -- whenever ``/readyz`` is sampled,
   ``status == "degraded"`` exactly when ``degraded_slots`` is non-empty
   exactly when fewer than all slots are ready.
5. **Containment** -- a crash-looping slot reaches ``failed`` within
   the respawn budget and is re-admitted afterwards.
6. **Disk-fault survival** -- an armed journal fault degrades the
   worker's journal to non-durable mode *without the worker dying*
   (same pid before and after).
7. **Handoff completeness** -- every live resize finishes with
   ``imported + duplicates == exported`` (no journaled completion is
   dropped in flight), the tier lands on exactly the last resize
   target, and no request is left parked once the soak ends.
8. **Replica consistency** -- a hot-key burst crosses the router's
   replication threshold and every burst response (whichever replica
   answered) is byte-identical to the single-payload oracle.
9. **Durable-state integrity** -- journals damaged mid-soak (bytes
   flipped by a ``corrupt`` event, or a worker SIGKILLed mid-compaction
   by ``kill_compact``) are always detected: the successor quarantines
   corrupt records / truncates torn tails (never serving a corrupted
   byte), an interrupted compaction leaves a journal that replays fully
   valid, and after the soak every shard journal passes an offline
   ``fsck`` clean.

Determinism: the same ``(seed, shards, duration)`` triple always yields
the same fault timeline (event *offsets* and victims; actual interleave
with the load loop is OS scheduling and is why the invariants are
properties, not traces).
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..server.app import ServerConfig
from ..server.client import ClientError, ReproClient
from ..service.engine import BatchEngine, EngineConfig
from ..service.faults import FAULTS_GUARD_ENV
from ..service.requests import parse_request
from ..shard.ipc import ShardIPCError
from ..shard.supervisor import RespawnPolicy, ShardBootError, ShardOpError
from ..shard.router import ShardedServer, routing_key
from .schedule import (
    ChaosEvent,
    format_event,
    generate_timeline,
)

Payload = Union[Dict[str, Any], str]

#: The fixed request grid replayed every soak iteration and compared to
#: the oracle.  Spans every request kind, includes a duplicate (cache /
#: dedup path) and a raw non-JSON line (deterministic error record).
CHAOS_GRID: List[Payload] = [
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {
        "kind": "fusion",
        "m": 96,
        "k": 64,
        "l": 80,
        "n": 72,
        "buffer_elems": 16384,
    },
    {"kind": "sweep_point", "m": 32, "k": 32, "l": 32, "buffer_elems": 1024},
    "this line is not valid json",
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {"kind": "intra", "m": 40, "k": 24, "l": 56, "buffer_elems": 8192},
]


def oracle_jsonl(grid: Sequence[Payload]) -> str:
    """The fault-free ground truth: a direct engine run, no server."""
    engine = BatchEngine(EngineConfig(jobs=2))
    report = engine.run_batch(
        [p if isinstance(p, str) else parse_request(p) for p in grid]
    )
    return report.to_jsonl()


def churn_payload(iteration: int) -> Dict[str, Any]:
    """A fresh-keyed request per iteration.

    The replayed grid is fully cached after iteration one, and cached
    answers never touch the journal -- so an armed journal fault would
    sit unfired forever.  Churn payloads carry novel keys, keeping
    journal appends (and therefore the disk-fault path) live all soak.
    """

    return {
        "kind": "sweep_point",
        "m": 32 + (iteration % 64),
        "k": 24 + (iteration // 64) % 64,
        "l": 40,
        "buffer_elems": 2048,
    }


@dataclass(frozen=True)
class ChaosConfig:
    """Harness knobs; ``seed`` is the whole identity of a run."""

    seed: int = 7
    shards: int = 3
    duration: float = 30.0
    profile: str = "full"
    #: Explicit timeline overriding the seeded generator (still applied
    #: relative to soak start).
    events: Optional[Sequence[ChaosEvent]] = None
    #: Where per-shard journals live; a temp dir when None.
    workdir: Optional[str] = None
    #: Dispatch escalation timeout -- deliberately short so a stalled
    #: shard is escalated within the soak window.
    op_timeout: float = 8.0
    #: Hot-key replication threshold handed to the router.  Low enough
    #: that a ``hotspot`` burst (40 requests) reliably crosses it, high
    #: enough that the steady grid/churn load never does.
    hot_key_threshold: float = 24.0
    respawn_policy: RespawnPolicy = field(
        default_factory=lambda: RespawnPolicy(
            backoff_base=0.1,
            backoff_max=2.0,
            max_rapid_deaths=3,
            death_window=10.0,
            failed_retry_interval=3.0,
        )
    )
    log: Callable[[str], None] = lambda message: print(f"repro chaos: {message}")


@dataclass
class ChaosReport:
    """What the soak proved (or failed to)."""

    seed: int
    shards: int
    duration: float
    profile: str
    timeline: List[str] = field(default_factory=list)
    iterations: int = 0
    requests_ok: int = 0
    calls_failed: int = 0
    oracle_mismatches: int = 0
    reroutes: int = 0
    respawns: int = 0
    contained: int = 0
    timeouts: int = 0
    readyz_samples: int = 0
    degraded_samples: int = 0
    reshards: int = 0
    keys_moved: int = 0
    replica_reads: int = 0
    hot_keys: int = 0
    final_shards: Optional[int] = None
    journal_degraded: Optional[bool] = None
    corruptions: int = 0
    corrupt_quarantined: int = 0
    compact_kills: int = 0
    compactions: int = 0
    journals_valid: Optional[bool] = None
    conservation: Optional[bool] = None
    requests_routed: int = 0
    invariant_failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.invariant_failures

    def to_dict(self) -> Dict[str, Any]:
        data = dict(self.__dict__)
        data["passed"] = self.passed
        return data


class _EventApplier(threading.Thread):
    """Applies the fault timeline against a live fleet."""

    def __init__(
        self,
        server: ShardedServer,
        events: Sequence[ChaosEvent],
        report: ChaosReport,
        config: ChaosConfig,
        started: float,
    ):
        super().__init__(name="repro-chaos-events", daemon=True)
        self.server = server
        self.events = sorted(events, key=lambda e: e.at)
        self.report = report
        self.config = config
        self.started = started
        #: (shard, pid) recorded when a journal fault is armed, so the
        #: verifier can prove the same worker survived its disk fault.
        self.journal_fault: Optional[Dict[str, Any]] = None
        self.crashloop_shard: Optional[int] = None
        self.stall_shard: Optional[int] = None
        #: Resize targets in applied order; the post-soak verifier
        #: checks the fleet landed on the last one.
        self.resize_targets: List[int] = []
        self.hotspot_requests_ok = 0

    # -- helpers -------------------------------------------------------
    def _handle(self, shard: int):
        return self.server.app.supervisor.handles[shard]

    def _fail(self, message: str) -> None:
        self.report.invariant_failures.append(message)
        self.config.log(f"INVARIANT FAILED: {message}")

    def _kill_pid(self, pid: Optional[int]) -> bool:
        if pid is None:
            return False
        try:
            os.kill(pid, signal.SIGKILL)
            return True
        except (OSError, ProcessLookupError):
            return False

    def _wait_state(
        self,
        shard: int,
        predicate: Callable[[Any], bool],
        timeout: float,
    ) -> bool:
        deadline = time.monotonic() + timeout
        handle = self._handle(shard)
        while time.monotonic() < deadline:
            if predicate(handle):
                return True
            time.sleep(0.05)
        return False

    # -- the actions ---------------------------------------------------
    def _apply_kill(self, event: ChaosEvent) -> None:
        handle = self._handle(event.shard)
        for _ in range(max(1, event.count)):
            old_pid = handle.pid
            if self._kill_pid(old_pid):
                self.config.log(
                    f"killed shard {event.shard} (pid {old_pid})"
                )
            self._wait_state(
                event.shard,
                lambda h: h.state == "ready" and h.pid != old_pid,
                timeout=20.0,
            )

    def _apply_crashloop(self, event: ChaosEvent) -> None:
        self.crashloop_shard = event.shard
        handle = self._handle(event.shard)
        policy = self.config.respawn_policy
        budget = (
            event.count if event.count else policy.max_rapid_deaths + 2
        )
        kills = 0
        while kills < budget:
            pid = handle.pid
            if handle.state == "failed":
                break
            if pid is not None and self._kill_pid(pid):
                kills += 1
                self.config.log(
                    f"crashloop: killed shard {event.shard} "
                    f"(pid {pid}, kill {kills}/{budget})"
                )
            # Wait for the slot to either respawn (next victim) or be
            # quarantined (containment did its job).
            self._wait_state(
                event.shard,
                lambda h: h.state == "failed"
                or (h.state == "ready" and h.pid != pid),
                timeout=20.0,
            )
        if event.count == 0:
            # "Until contained": the loop must end in quarantine.
            if not self._wait_state(
                event.shard, lambda h: h.state == "failed", timeout=10.0
            ):
                self._fail(
                    f"crash-looping shard {event.shard} was not "
                    f"contained within {kills} kills "
                    f"(budget {budget}); state={handle.state!r}"
                )
            else:
                self.config.log(
                    f"crashloop: shard {event.shard} contained after "
                    f"{kills} kills"
                )

    def _apply_stall(self, event: ChaosEvent) -> None:
        self.stall_shard = event.shard
        handle = self._handle(event.shard)
        pid = handle.pid
        if pid is None:
            self.report.notes.append(
                f"stall skipped: shard {event.shard} had no pid"
            )
            return
        try:
            os.kill(pid, signal.SIGSTOP)
        except (OSError, ProcessLookupError):
            self.report.notes.append(
                f"stall skipped: shard {event.shard} pid {pid} vanished"
            )
            return
        self.config.log(
            f"stalled shard {event.shard} (pid {pid}, SIGSTOP) for "
            f"{event.duration:g}s"
        )
        time.sleep(event.duration)
        # Escalation may have SIGKILLed the stopped worker already;
        # resuming a corpse is a no-op we tolerate.
        try:
            os.kill(pid, signal.SIGCONT)
            self.config.log(f"resumed shard {event.shard} (pid {pid})")
        except (OSError, ProcessLookupError):
            self.config.log(
                f"stalled shard {event.shard} pid {pid} was escalated "
                "(killed) before resume -- expected under a long stall"
            )

    def _apply_journal_fault(self, event: ChaosEvent) -> None:
        handle = self._handle(event.shard)
        pid = handle.pid
        try:
            handle.call(
                "chaos",
                timeout=10.0,
                journal={"mode": event.mode, "after": 0},
            )
        except (ShardIPCError, ShardOpError) as exc:
            self._fail(
                f"could not arm journal fault on shard "
                f"{event.shard}: {exc}"
            )
            return
        self.journal_fault = {
            "shard": event.shard,
            "pid": pid,
            "mode": event.mode,
        }
        self.config.log(
            f"armed journal {event.mode} fault on shard {event.shard} "
            f"(pid {pid})"
        )

    def _apply_corrupt(self, event: ChaosEvent) -> None:
        """Damage the slot's on-disk journal, kill the worker, verify.

        The successor's replay must *detect* the damage -- quarantine a
        corrupt record (``mid``/``header``), truncate a torn tail
        (``tail``) -- and keep serving; a corrupted byte must never come
        back as a result.  Lost records are recomputed, so byte identity
        with the oracle is checked by the ordinary soak loop.
        """

        from ..shard.router import shard_server_config

        path = shard_server_config(
            self.server.app.config, event.shard
        ).journal_path
        if not path or not os.path.exists(path):
            self.report.notes.append(
                f"corrupt skipped: shard {event.shard} has no journal file"
            )
            return
        pid = self._handle(event.shard).pid
        description = ""
        if event.mode == "tail":
            # A torn partial append, exactly what a crash mid-write
            # leaves behind (no trailing newline).
            with open(path, "ab") as fh:
                fh.write(b'{"type":"completion","key":"torn-by-chaos')
            description = "torn partial append"
        elif event.mode == "header":
            with open(path, "r+b") as fh:
                fh.write(b"\x00")
            description = "first header byte clobbered"
        else:  # mid: break one completion record's CRC
            with open(path, "rb") as fh:
                lines = fh.read().split(b"\n")
            target = None
            for idx, line in enumerate(lines):
                if idx == 0:
                    continue
                if b'"type":"completion"' in line and b'"crc":"' in line:
                    target = idx
                    break
            if target is None:
                with open(path, "ab") as fh:
                    fh.write(b"gibberish from the chaos harness\n")
                description = "garbage line appended (no completions yet)"
            else:
                line = lines[target]
                pos = line.find(b'"crc":"') + len(b'"crc":"')
                flipped = b"0" if line[pos : pos + 1] != b"0" else b"f"
                lines[target] = line[:pos] + flipped + line[pos + 1 :]
                with open(path, "wb") as fh:
                    fh.write(b"\n".join(lines))
                description = f"crc byte flipped on line {target + 1}"
        if self._kill_pid(pid):
            self.config.log(
                f"corrupted shard {event.shard} journal "
                f"(mode={event.mode}: {description}); killed pid {pid} "
                "so the successor replays through the damage"
            )
        self._wait_state(
            event.shard,
            lambda h: h.state == "ready" and h.pid != pid,
            timeout=20.0,
        )
        self.report.corruptions += 1
        verified = False
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            handle = self._handle(event.shard)
            try:
                stats = handle.call("stats", timeout=10.0)
            except (ShardIPCError, ShardOpError):
                time.sleep(0.2)
                continue
            journal = (stats.get("stats") or {}).get("journal") or {}
            quarantined = int(journal.get("corrupt_quarantined") or 0)
            dropped = int(journal.get("recovered_drops") or 0)
            # A torn tail is truncated; flipped bytes are quarantined.
            # (A tail-append can race a live worker write into one
            # merged garbage line, which quarantines instead -- both
            # paths prove detection.)
            if quarantined >= 1 or (event.mode == "tail" and dropped >= 1):
                self.report.corrupt_quarantined += quarantined
                self.config.log(
                    f"shard {event.shard} successor detected the "
                    f"{event.mode} damage (quarantined={quarantined}, "
                    f"torn={dropped}); corrupt records are recomputed, "
                    "never served"
                )
                verified = True
                break
            time.sleep(0.2)
        if not verified:
            self._fail(
                f"corrupt mode={event.mode} on shard {event.shard} was "
                "never detected by the successor's replay (quarantine/"
                "torn counters stayed zero)"
            )

    def _apply_kill_compact(self, event: ChaosEvent) -> None:
        """SIGKILL a worker mid-compaction; the successor must be whole.

        Arms the worker's ``compact_kill`` chaos switch at the
        ``pre_rename`` step (fully written temp file, swap not yet
        committed -- the scariest instant), triggers a compaction, and
        expects the pipe to die.  The respawned worker must replay a
        fully valid journal and complete the compaction when re-asked.
        """

        handle = self._handle(event.shard)
        pid = handle.pid
        step = "pre_rename"
        try:
            handle.call(
                "chaos", timeout=10.0, compact_kill={"step": step}
            )
        except (ShardIPCError, ShardOpError) as exc:
            self._fail(
                f"could not arm compact_kill on shard {event.shard}: "
                f"{exc}"
            )
            return
        self.config.log(
            f"armed compact_kill({step}) on shard {event.shard} "
            f"(pid {pid}); triggering compaction"
        )
        try:
            handle.call("compact", timeout=15.0)
        except ShardIPCError:
            self.config.log(
                f"shard {event.shard} died mid-compaction as armed "
                f"(pid {pid})"
            )
        except ShardOpError as exc:
            self._fail(
                f"compact op on shard {event.shard} errored instead of "
                f"killing the worker: {exc}"
            )
            return
        else:
            self._fail(
                f"armed compact_kill({step}) on shard {event.shard} "
                "never fired (compaction completed normally)"
            )
            return
        self.report.compact_kills += 1
        if not self._wait_state(
            event.shard,
            lambda h: h.state == "ready" and h.pid != pid,
            timeout=20.0,
        ):
            self._fail(
                f"shard {event.shard} never respawned after dying "
                "mid-compaction"
            )
            return
        try:
            reply = self.server.app.supervisor.call_with_retry(
                event.shard, "compact", timeout=30.0
            )
        except (ShardIPCError, ShardBootError, ShardOpError) as exc:
            self._fail(
                f"post-kill compaction retry failed on shard "
                f"{event.shard}: {exc}"
            )
            return
        if reply.get("compacted"):
            self.report.compactions += 1
        self.config.log(
            f"shard {event.shard} respawned with a valid journal and "
            "compacted cleanly after the mid-compaction kill"
        )

    def _apply_ipc_delay(self, event: ChaosEvent) -> None:
        handle = self._handle(event.shard)
        handle.ipc_delay = event.duration
        self.config.log(
            f"slowed shard {event.shard} pipe by {event.duration:g}s/call"
        )
        time.sleep(max(1, event.count))
        handle.ipc_delay = 0.0
        self.config.log(f"restored shard {event.shard} pipe speed")

    def _apply_resize(self, event: ChaosEvent) -> None:
        summary = self.server.app.reshard(event.shards)
        self.resize_targets.append(event.shards)
        self.report.keys_moved += summary.get("keys_moved", 0)
        if not summary.get("noop"):
            # reshards_completed only counts real topology changes, so
            # the applier's tally must too.
            self.report.reshards += 1
            exported = summary.get("exported", 0)
            imported = summary.get("imported", 0)
            duplicates = summary.get("duplicates", 0)
            if imported + duplicates != exported:
                self._fail(
                    f"handoff incomplete on resize -> {event.shards}: "
                    f"exported {exported} but imported {imported} + "
                    f"{duplicates} duplicates"
                )
        self.config.log(
            f"resized tier {summary.get('from')} -> {summary.get('to')}: "
            f"{summary.get('keys_moved')} key(s) moved, "
            f"{len(summary.get('rescued_slots') or [])} slot(s) rescued"
        )

    def _apply_hotspot(self, event: ChaosEvent) -> None:
        app = self.server.app
        tracker = app.hot_keys
        if tracker is None:
            self._fail(
                "hotspot scheduled but hot-key tracking is disabled"
            )
            return
        payload = CHAOS_GRID[int(event.key) % len(CHAOS_GRID)]
        expected = oracle_jsonl([payload]).strip()
        body = (
            payload if isinstance(payload, str) else json.dumps(payload)
        ).encode("utf-8")
        replica_reads_before = app.serving.as_dict().get("replica_reads", 0)
        successes = 0
        mismatches = 0
        for _ in range(event.count):
            response = app.handle(
                "POST",
                "/v1/analyze",
                {},
                {"content-type": "application/x-ndjson"},
                body,
                "chaos-hotspot",
            )
            if response.status != 200:
                self.report.calls_failed += 1
                continue
            successes += 1
            if response.body.decode("utf-8").strip() != expected:
                mismatches += 1
        self.hotspot_requests_ok += successes
        self.report.requests_ok += successes
        if mismatches:
            self.report.oracle_mismatches += mismatches
            self._fail(
                f"hotspot burst: {mismatches}/{successes} responses not "
                "byte-identical to the single-payload oracle (replica "
                "answers must be the owner's bytes)"
            )
        if not successes:
            self._fail(
                f"hotspot burst of {event.count} produced no successful "
                "responses"
            )
            return
        key = routing_key(payload)
        if not tracker.is_hot(key):
            self._fail(
                f"hotspot burst of {event.count} never crossed the "
                f"hot-key threshold ({tracker.threshold:g})"
            )
        replica_reads_after = app.serving.as_dict().get("replica_reads", 0)
        if replica_reads_after == replica_reads_before:
            # Only damning if both top replicas were serviceable -- with
            # one replica down, every read legitimately lands on the
            # survivor, which may be the owner itself.
            from ..shard.hashing import rendezvous_ranking

            ranking = rendezvous_ranking(key, app.shards)[
                : tracker.replicas
            ]
            handles = list(app.supervisor.handles)
            ready = [
                index
                for index in ranking
                if index < len(handles)
                and handles[index].state == "ready"
            ]
            if len(ready) >= 2:
                self._fail(
                    f"hot key never served off a replica despite "
                    f"{len(ready)} ready replica slots"
                )
            else:
                self.report.notes.append(
                    "hotspot: no replica reads (only "
                    f"{len(ready)} replica slot(s) ready during burst)"
                )
        self.config.log(
            f"hotspot key={event.key}: {successes} ok, "
            f"{replica_reads_after - replica_reads_before} replica reads"
        )

    def run(self) -> None:
        for event in self.events:
            delay = self.started + event.at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self.config.log(f"applying: {format_event(event)}")
            try:
                if event.action == "kill":
                    self._apply_kill(event)
                elif event.action == "crashloop":
                    self._apply_crashloop(event)
                elif event.action == "stall":
                    self._apply_stall(event)
                elif event.action == "journal_fault":
                    self._apply_journal_fault(event)
                elif event.action == "ipc_delay":
                    self._apply_ipc_delay(event)
                elif event.action == "resize":
                    self._apply_resize(event)
                elif event.action == "hotspot":
                    self._apply_hotspot(event)
                elif event.action == "corrupt":
                    self._apply_corrupt(event)
                elif event.action == "kill_compact":
                    self._apply_kill_compact(event)
            except Exception as exc:  # applier bugs must be loud
                self._fail(
                    f"event {format_event(event)} raised "
                    f"{type(exc).__name__}: {exc}"
                )


def _check_readyz(server: ShardedServer, report: ChaosReport) -> None:
    """Sample /readyz and assert its self-consistency."""
    response = server.app.handle("GET", "/readyz", {}, {}, b"", "chaos")
    report.readyz_samples += 1
    import json as _json

    body = _json.loads(response.body.decode("utf-8"))
    if "error" in body:  # draining: not sampled during the soak
        return
    resharding = body.get("resharding") or {}
    if body.get("status") == "resharding" or resharding.get("active"):
        # Topology in flux: slots are legitimately booting or retiring,
        # so the three-way degraded consistency check does not apply --
        # but the status string and the active flag must agree, and the
        # parked-count gauge must be present and sane.
        if body.get("status") != "resharding" or not resharding.get(
            "active"
        ):
            report.invariant_failures.append(
                "readyz resharding inconsistent: status={!r} "
                "active={!r}".format(
                    body.get("status"), resharding.get("active")
                )
            )
        if not isinstance(resharding.get("pending"), int):
            report.invariant_failures.append(
                f"readyz resharding missing integer pending gauge: "
                f"{resharding}"
            )
        return
    degraded_slots = body.get("degraded_slots", [])
    shards = body.get("shards", {})
    degraded = bool(degraded_slots)
    if degraded:
        report.degraded_samples += 1
        for slot in degraded_slots:
            missing = {"shard", "state", "generation", "respawns"} - set(
                slot
            )
            if missing:
                report.invariant_failures.append(
                    f"readyz degraded_slots entry missing fields "
                    f"{sorted(missing)}: {slot}"
                )
    status_says = body.get("status") == "degraded"
    counts_say = shards.get("ready", 0) < shards.get("count", 0)
    if not (status_says == degraded == counts_say):
        report.invariant_failures.append(
            "readyz inconsistent: status={!r} degraded_slots={} "
            "ready={}/{}".format(
                body.get("status"),
                len(degraded_slots),
                shards.get("ready"),
                shards.get("count"),
            )
        )


def run_chaos(config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Run one seeded chaos soak end to end; returns the report.

    Never raises for an invariant violation -- failures are accumulated
    in ``report.invariant_failures`` so a CI step can print all of them
    before failing.  Raises only for harness-level impossibilities
    (cannot boot the fleet, cannot bind a socket...).
    """

    config = config or ChaosConfig()
    events = list(
        config.events
        if config.events is not None
        else generate_timeline(
            config.seed, config.shards, config.duration, config.profile
        )
    )
    report = ChaosReport(
        seed=config.seed,
        shards=config.shards,
        duration=config.duration,
        profile=config.profile,
        timeline=[format_event(event) for event in events],
    )
    oracle = oracle_jsonl(CHAOS_GRID)
    started_wall = time.monotonic()

    tmp = None
    workdir = config.workdir
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = tmp.name

    # Workers must inherit the fault-injection guard or the `chaos` IPC
    # op refuses to arm anything.  Respawned workers spawn mid-soak, so
    # the variable stays set until teardown.
    old_guard = os.environ.get(FAULTS_GUARD_ENV)
    os.environ[FAULTS_GUARD_ENV] = "1"
    server = None
    try:
        server_config = ServerConfig(
            port=0,
            jobs=1,
            journal_path=os.path.join(workdir, "tier.journal"),
            retry_jitter_seed=config.seed,
        )
        server = ShardedServer(
            server_config,
            shards=config.shards,
            health_interval=0.2,
            op_timeout=config.op_timeout,
            respawn_policy=config.respawn_policy,
            hot_key_threshold=config.hot_key_threshold,
        ).start()
        config.log(
            f"fleet up: {config.shards} shards at {server.url} "
            f"(seed {config.seed}, {config.duration:g}s soak, "
            f"{len(events)} events)"
        )

        applier = _EventApplier(
            server, events, report, config, time.monotonic()
        )
        applier.start()

        deadline = time.monotonic() + config.duration
        client = ReproClient(
            host=server.host,
            port=server.port,
            timeout=60.0,
            max_attempts=8,
            retry_base_delay=0.05,
            client_id=f"chaos-{config.seed}",
        )
        transport_anomalies = 0
        with client:
            while time.monotonic() < deadline:
                report.iterations += 1
                try:
                    lines = client.batch_lines(CHAOS_GRID)
                    if "\n".join(lines) != oracle:
                        report.oracle_mismatches += 1
                        report.invariant_failures.append(
                            f"iteration {report.iterations}: response "
                            f"not byte-identical to oracle "
                            f"({len(lines)} lines)"
                        )
                    else:
                        report.requests_ok += len(CHAOS_GRID)
                except ClientError as exc:
                    report.calls_failed += 1
                    transport_anomalies += 1
                    report.notes.append(
                        f"iteration {report.iterations}: grid call "
                        f"failed: {type(exc).__name__}: {exc}"
                    )
                try:
                    client.batch_lines([churn_payload(report.iterations)])
                    report.requests_ok += 1
                except ClientError:
                    report.calls_failed += 1
                    transport_anomalies += 1
                _check_readyz(server, report)
                time.sleep(0.05)

        applier.join(timeout=60.0)
        if applier.is_alive():
            report.invariant_failures.append(
                "event applier still running after soak + 60s grace"
            )

        # ---- recovery: every slot back to ready ----------------------
        recovery_deadline = time.monotonic() + max(
            15.0, config.respawn_policy.failed_retry_interval * 3
        )
        while time.monotonic() < recovery_deadline:
            if server.app.supervisor.all_ready:
                break
            time.sleep(0.1)
        snapshot = server.app.supervisor.snapshot()
        if snapshot["ready"] != snapshot["count"]:
            report.invariant_failures.append(
                f"fleet did not recover: {snapshot['ready']}/"
                f"{snapshot['count']} slots ready after grace "
                f"(states: "
                f"{[s['state'] for s in snapshot['shards']]})"
            )
        report.respawns = snapshot["respawns"]
        report.contained = snapshot["contained"]
        report.timeouts = snapshot["timeouts"]

        # ---- containment happened if a crashloop was scheduled -------
        if (
            applier.crashloop_shard is not None
            and snapshot["contained"] == 0
        ):
            report.invariant_failures.append(
                f"crashloop on shard {applier.crashloop_shard} never "
                "triggered containment"
            )

        # ---- disk-fault survival -------------------------------------
        if applier.journal_fault is not None:
            fault = applier.journal_fault
            verified = False
            verify_deadline = time.monotonic() + 15.0
            while time.monotonic() < verify_deadline:
                handle = server.app.supervisor.handles[fault["shard"]]
                if handle.pid != fault["pid"]:
                    report.invariant_failures.append(
                        f"shard {fault['shard']} worker died after its "
                        f"journal {fault['mode']} fault (pid "
                        f"{fault['pid']} -> {handle.pid}); faults must "
                        "degrade, not kill"
                    )
                    break
                try:
                    stats = handle.call("stats", timeout=10.0)
                except (ShardIPCError, ShardOpError):
                    time.sleep(0.2)
                    continue
                journal = (stats.get("stats") or {}).get("journal") or {}
                if journal.get("degraded"):
                    verified = True
                    config.log(
                        f"shard {fault['shard']} journal degraded to "
                        f"non-durable mode (reason: "
                        f"{journal.get('degraded_reason')}), worker "
                        f"survived (pid {fault['pid']})"
                    )
                    break
                time.sleep(0.2)
            report.journal_degraded = verified
            if not verified and not any(
                "journal" in failure
                for failure in report.invariant_failures
            ):
                report.invariant_failures.append(
                    f"armed journal {fault['mode']} fault on shard "
                    f"{fault['shard']} never surfaced as degraded mode"
                )

        # ---- final oracle pass over the recovered fleet --------------
        with ReproClient(
            host=server.host,
            port=server.port,
            timeout=60.0,
            max_attempts=8,
            client_id=f"chaos-{config.seed}-final",
        ) as final_client:
            try:
                lines = final_client.batch_lines(CHAOS_GRID)
                if "\n".join(lines) != oracle:
                    report.invariant_failures.append(
                        "final post-recovery batch not byte-identical "
                        "to oracle"
                    )
                else:
                    report.requests_ok += len(CHAOS_GRID)
            except ClientError as exc:
                report.invariant_failures.append(
                    f"final post-recovery batch failed: {exc}"
                )

        # ---- elastic handoff accounting ------------------------------
        serving = server.app.serving.as_dict()
        report.keys_moved = serving.get("keys_moved", 0)
        report.replica_reads = serving.get("replica_reads", 0)
        if server.app.hot_keys is not None:
            report.hot_keys = server.app.hot_keys.hot_count()
        report.final_shards = snapshot["count"]
        scheduled_resizes = [e for e in events if e.action == "resize"]
        if scheduled_resizes:
            completed = serving.get("reshards_completed", 0)
            if completed != report.reshards:
                report.invariant_failures.append(
                    f"reshard accounting: applier saw {report.reshards} "
                    f"topology change(s) but reshards_completed="
                    f"{completed}"
                )
            expected_count = (
                applier.resize_targets[-1]
                if applier.resize_targets
                else config.shards
            )
            if snapshot["count"] != expected_count:
                report.invariant_failures.append(
                    f"fleet is {snapshot['count']} shard(s) after soak; "
                    f"last resize targeted {expected_count}"
                )
        if server.app.handoff_pending != 0:
            report.invariant_failures.append(
                f"{server.app.handoff_pending} request(s) still parked "
                "behind a handoff after the soak ended"
            )

        # ---- counter conservation ------------------------------------
        routed = server.app.serving.as_dict().get("requests_routed", 0)
        report.requests_routed = routed
        report.reroutes = server.app.serving.as_dict().get(
            "shard_reroutes", 0
        )
        if routed < report.requests_ok:
            report.conservation = False
            report.invariant_failures.append(
                f"counter conservation violated: requests_routed="
                f"{routed} < {report.requests_ok} requests the harness "
                "saw succeed (accepted work went missing)"
            )
        elif routed > report.requests_ok and transport_anomalies == 0:
            report.conservation = False
            report.invariant_failures.append(
                f"counter conservation violated: requests_routed="
                f"{routed} > {report.requests_ok} with no transport "
                "anomalies to explain duplicates"
            )
        elif routed == report.requests_ok:
            report.conservation = True
        else:
            report.conservation = None
            report.notes.append(
                f"conservation indeterminate: requests_routed={routed}, "
                f"harness-counted={report.requests_ok}, "
                f"{transport_anomalies} transport anomalies (a retried "
                "call may have been served twice)"
            )

        # ---- durable-state integrity (invariant 9) -------------------
        # Stop the fleet first so every journal is quiescent, then fsck
        # each shard's file offline.  Whatever the soak did -- flipped
        # bytes, torn tails, SIGKILL mid-compaction -- the survivors on
        # disk must load clean.
        tier_stats = server.app.stats_dict().get("shards") or {}
        report.compactions += int(
            tier_stats.get("journal_compactions") or 0
        )
        server.shutdown(drain=True, timeout=30.0)
        from ..service.journal import fsck_file
        from ..shard.router import shard_server_config

        journals_valid = True
        checked = 0
        for index in range(snapshot["count"]):
            journal_path = shard_server_config(
                server_config, index
            ).journal_path
            if not journal_path or not os.path.exists(journal_path):
                continue
            checked += 1
            verdict = fsck_file(journal_path)
            if verdict.get("exit_code", 2) != 0:
                journals_valid = False
                report.invariant_failures.append(
                    "durable-state integrity violated: post-soak fsck of "
                    f"{journal_path} is {verdict.get('status')} "
                    f"({verdict.get('detail') or 'corrupt records on disk'})"
                )
        report.journals_valid = journals_valid if checked else None
        if checked:
            config.log(
                f"post-soak fsck: {checked} shard journal(s) checked, "
                f"{'all clean' if journals_valid else 'PROBLEMS FOUND'}"
            )
    finally:
        if server is not None:
            try:
                server.shutdown(drain=True, timeout=30.0)
            except Exception:
                pass
        if old_guard is None:
            os.environ.pop(FAULTS_GUARD_ENV, None)
        else:
            os.environ[FAULTS_GUARD_ENV] = old_guard
        if tmp is not None:
            tmp.cleanup()
    report.elapsed = round(time.monotonic() - started_wall, 3)
    return report
