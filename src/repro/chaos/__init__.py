"""Deterministic chaos engineering for the serving tier.

``repro chaos --seed 7 --shards 3`` boots a real sharded fleet, soaks
it with steady request load, applies a *seeded, reproducible* fault
timeline (worker kills, crash loops, SIGSTOP stalls, journal disk
faults, on-disk journal corruption, SIGKILL mid-compaction), and
verifies the tier's promises held the whole way through:
byte-identical output, no lost accepted work, conserved counters,
truthful readiness, crash-loop containment, disk-fault survival, and
durable-state integrity (every surviving journal passes ``fsck``).

The timeline grammar and generator live in
:mod:`~repro.chaos.schedule`; the harness and its invariant checks in
:mod:`~repro.chaos.harness`.  The same seed always reproduces the same
schedule -- a chaos failure is a bug report you can re-run.
"""

from .harness import (
    CHAOS_GRID,
    ChaosConfig,
    ChaosReport,
    churn_payload,
    oracle_jsonl,
    run_chaos,
)
from .schedule import (
    CHAOS_ACTIONS,
    CHAOS_PROFILES,
    CORRUPT_MODES,
    TIER_ACTIONS,
    ChaosEvent,
    describe_timeline,
    format_event,
    format_timeline,
    generate_timeline,
    parse_event,
    parse_timeline,
)

__all__ = [
    "CHAOS_ACTIONS",
    "CHAOS_GRID",
    "CHAOS_PROFILES",
    "CORRUPT_MODES",
    "TIER_ACTIONS",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosReport",
    "churn_payload",
    "describe_timeline",
    "format_event",
    "format_timeline",
    "generate_timeline",
    "oracle_jsonl",
    "parse_event",
    "parse_timeline",
    "run_chaos",
]
