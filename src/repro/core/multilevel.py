"""Two-level memory-hierarchy optimization (paper Sec. IV-B's argument).

The paper applies the principles at two boundaries: DRAM <-> on-chip buffer
(Sec. III) and buffer <-> PE registers (Sec. IV-B, where the "buffer size"
is the PE-array register file, ``BS = N x N``).  The register-level
analysis yields the architecture insight that sizes FuseCU: un-tiling is
only optimal when the smallest dimension is below ``2N``, so the array only
needs to recombine up to ``2N``-wide shapes.

:func:`optimize_two_level` composes the levels: the outer level picks the
buffer tile with the intra-operator optimizer; the resolved tile then
becomes a *sub-operator* whose "memory" is the buffer and whose "buffer"
is the register file, optimized by the same principles.  Traffic at each
boundary is reported separately (outer traffic counts once; inner traffic
scales by the number of outer tile executions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..ir.operator import TensorOperator, matmul
from ..dataflow.cost import PartialSumConvention
from .intra import IntraResult, optimize_intra
from .nra import is_mm_like
from .regimes import classify_buffer


@dataclass(frozen=True)
class TwoLevelResult:
    """Outcome of a two-level (DRAM<->buffer, buffer<->registers) analysis."""

    operator: TensorOperator
    outer: IntraResult
    inner: IntraResult
    inner_executions: int

    @property
    def dram_traffic(self) -> int:
        """DRAM <-> buffer elements (the paper's MA)."""
        return self.outer.memory_access

    @property
    def buffer_traffic(self) -> int:
        """Buffer <-> register-file elements, over all tile executions."""
        return self.inner.memory_access * self.inner_executions

    def describe(self) -> str:
        return (
            f"{self.operator.name}: DRAM traffic={self.dram_traffic} "
            f"({self.outer.label}); buffer traffic={self.buffer_traffic} "
            f"({self.inner.label} x {self.inner_executions} tiles)"
        )


def _sub_operator(operator: TensorOperator, outer: IntraResult) -> TensorOperator:
    """The buffer tile as a standalone operator (for the register level)."""
    if not is_mm_like(operator):
        raise ValueError("two-level analysis currently covers MM-like operators")
    tiling = outer.dataflow.tiling.for_operator(operator)
    m_dim, k_dim = operator.dims_of(operator.inputs[0].name)
    l_dim = operator.dims_of(operator.inputs[1].name)[1]
    return matmul(
        f"{operator.name}.tile",
        tiling[m_dim],
        tiling[k_dim],
        tiling[l_dim],
    )


def optimize_two_level(
    operator: TensorOperator,
    buffer_elems: int,
    register_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> TwoLevelResult:
    """Optimize both memory boundaries with the principles.

    ``register_elems`` is typically the PE count (``N x N`` accumulators,
    paper Sec. IV-B).
    """

    outer = optimize_intra(operator, buffer_elems, convention)
    sub = _sub_operator(operator, outer)
    inner = optimize_intra(sub, register_elems, convention)
    executions = operator.count * math.ceil(
        operator.iteration_space / sub.iteration_space
    )
    return TwoLevelResult(
        operator=operator,
        outer=outer,
        inner=inner,
        inner_executions=executions,
    )


def max_useful_untiled_dim(array_n: int) -> int:
    """Sec. IV-B: the widest untiled dimension worth supporting is ``2N``.

    With the register file as the buffer (``BS = N^2``), un-tiling is only
    optimal in the Two-/Three-NRA regimes, which require
    ``BS > Dmin^2 / 4``; hence ``Dmin < 2N``.
    """

    if array_n <= 0:
        raise ValueError("array dimension must be positive")
    return 2 * array_n


def untiling_is_optimal_at_registers(d_min: int, array_n: int) -> bool:
    """Whether a register-level dataflow should untile, per the 2N bound."""
    return d_min < max_useful_untiled_dim(array_n)
