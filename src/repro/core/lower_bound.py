"""Communication lower bounds (the paper's headline analytical product).

The principles yield, for each operator and buffer size, the minimum
memory<->buffer traffic any tiling/scheduling can achieve within the modeled
space; :func:`intra_lower_bound` and :func:`graph_lower_bound` expose these
directly.  :func:`closed_form_curve` additionally provides the paper's
piecewise MA(BS) curve used in the Fig. 9 validation plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..ir.graph import OperatorGraph
from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention
from .graph_optimizer import GraphPlan, optimize_graph
from .intra import optimize_intra
from .regimes import BufferRegime, classify_buffer


def intra_lower_bound(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> int:
    """Minimum memory access for one operator at the given buffer size."""
    return optimize_intra(operator, buffer_elems, convention).memory_access


def graph_lower_bound(
    graph: OperatorGraph,
    buffer_elems: int,
    enable_fusion: bool = True,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> int:
    """Minimum memory access for a graph, with or without operator fusion."""
    plan: GraphPlan = optimize_graph(
        graph, buffer_elems, enable_fusion=enable_fusion, convention=convention
    )
    return plan.memory_access


@dataclass(frozen=True)
class CurvePoint:
    """One (buffer size, lower bound) sample of the MA(BS) curve."""

    buffer_elems: int
    memory_access: int
    regime: BufferRegime


def closed_form_curve(
    operator: TensorOperator,
    buffer_sizes: Sequence[int],
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> Tuple[CurvePoint, ...]:
    """Sample the lower-bound curve over a sweep of buffer sizes."""
    points = []
    for buffer_elems in buffer_sizes:
        result = optimize_intra(operator, buffer_elems, convention)
        points.append(
            CurvePoint(
                buffer_elems=buffer_elems,
                memory_access=result.memory_access,
                regime=classify_buffer(operator, buffer_elems).regime,
            )
        )
    return tuple(points)


def shift_point_band(operator: TensorOperator) -> Tuple[float, float]:
    """The paper's Single->Two-NRA shift band ``[Dmin^2/4, Dmin^2/2]``."""
    d_min = min(operator.dims.values())
    return (d_min * d_min / 4, d_min * d_min / 2)


def three_nra_threshold(operator: TensorOperator) -> int:
    """Buffer size beyond which Three-NRA (ideal MA) becomes reachable."""
    return operator.smallest_tensor.size
