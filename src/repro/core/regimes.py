"""Buffer-size regimes (paper Sec. III-A4).

The paper classifies buffer sizes into four categories relative to the
operator's smallest dimension ``Dmin`` and smallest tensor ``Tensor_min``;
each category selects (or narrows to two candidates) the optimal NRA class:

====== ================================== ==================
regime condition                          dataflow
====== ================================== ==================
tiny   BS <= Dmin^2 / 4                   Single-NRA
small  Dmin^2 / 4 < BS <= Dmin^2 / 2      Single- or Two-NRA
medium Dmin^2 / 2 < BS <= Tensor_min      Two-NRA
large  BS > Tensor_min                    Three-NRA
====== ================================== ==================

Buffer sizes throughout the library are measured in *elements* (the paper's
arithmetic, e.g. "BS = 512 KB > 768^2/2 = 294,912", equates bytes and
elements for its int8 design; architecture models convert via
``dtype_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from ..ir.operator import TensorOperator, validate_buffer_elems
from ..dataflow.spec import NRAClass


class BufferRegime(Enum):
    """The four buffer-size categories of paper Sec. III-A4."""

    TINY = "tiny"
    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: NRA classes worth considering in each regime.
REGIME_CANDIDATES = {
    BufferRegime.TINY: (NRAClass.SINGLE,),
    BufferRegime.SMALL: (NRAClass.SINGLE, NRAClass.TWO),
    BufferRegime.MEDIUM: (NRAClass.TWO,),
    BufferRegime.LARGE: (NRAClass.THREE,),
}


@dataclass(frozen=True)
class RegimeReport:
    """Classification of a buffer size for an operator."""

    regime: BufferRegime
    buffer_elems: int
    d_min: int
    tensor_min: int

    @property
    def candidates(self) -> Tuple[NRAClass, ...]:
        return REGIME_CANDIDATES[self.regime]


def classify_buffer(operator: TensorOperator, buffer_elems: int) -> RegimeReport:
    """Classify ``buffer_elems`` per the paper's four-regime table."""
    buffer_elems = validate_buffer_elems(buffer_elems)
    d_min = min(operator.dims.values())
    tensor_min = operator.smallest_tensor.size
    threshold_tiny = d_min * d_min / 4
    threshold_small = d_min * d_min / 2
    if buffer_elems <= threshold_tiny:
        regime = BufferRegime.TINY
    elif buffer_elems <= threshold_small:
        regime = BufferRegime.SMALL
    elif buffer_elems <= tensor_min:
        regime = BufferRegime.MEDIUM
    else:
        regime = BufferRegime.LARGE
    return RegimeReport(
        regime=regime,
        buffer_elems=buffer_elems,
        d_min=d_min,
        tensor_min=tensor_min,
    )
