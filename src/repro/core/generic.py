"""Generalized principle-based optimization for arbitrary loop-nest operators.

Paper Sec. III-B closes with: "Principle 1-4 can be extended to other
tensor operators, as all tensor operators can be represented as for-loops,
varying only on the number of loop levels while sharing consistent
derivation."  This module is that extension: for any operator whose
tensors are each indexed by a subset of the loop dimensions (einsum-like --
batched matmuls, im2col-lowered convolutions, tensor contractions), it
constructs the same three candidate families the MM analysis produces:

* **stationary[t]** (Principle 1): maximize the tiles of tensor ``t``'s
  dims jointly (balanced growth under the footprint constraint), minimize
  every other dim; schedule ``t``'s dims outermost so ``t`` is reused
  across the inner loops.
* **untile[d, x]** (Principle 2): leave dim ``d`` whole, maximize the tile
  of one other dim ``x``, minimize the rest.
* **resident[t]** (Principle 3): keep tensor ``t`` entirely on-chip (all
  its dims untiled), minimize the rest.

The candidate count is ``2*T + D*(D-1)`` for ``T`` tensors and ``D`` dims --
still a constant independent of tensor sizes, preserving the one-shot
property.  For 3-dim MM-like operators the specialized constructors in
:mod:`repro.core.nra` (with their exact pair refinement) are preferred;
:func:`optimize_generic` exists for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.operator import TensorOperator
from ..dataflow.cost import MemoryAccessReport, PartialSumConvention, memory_access
from ..dataflow.scheduling import Schedule
from ..dataflow.spec import Dataflow
from ..dataflow.tiling import Tiling
from .intra import InfeasibleError, IntraResult
from .nra import is_mm_like, is_streaming, max_feasible, streaming_dataflow


@dataclass(frozen=True)
class GenericCandidate:
    """One generalized principle candidate."""

    label: str
    dataflow: Dataflow


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


def _balanced_scale_tilings(
    operator: TensorOperator,
    grown_dims: Tuple[str, ...],
    buffer_elems: int,
) -> List[Tiling]:
    """Candidate tilings growing the named dims under the footprint budget.

    All other dims get tile 1.  Returns the lock-step balanced solution
    plus greedy growth in every order (slack from clamped dims flows to the
    others) and trip-count-snapped variants -- the multi-dim analogue of
    the MM pair refinement.  Empty when even all-ones overflows.
    """

    import itertools

    def tiling_for(scale: int) -> Dict[str, int]:
        tiles = {dim: 1 for dim in operator.dim_names}
        for dim in grown_dims:
            tiles[dim] = min(scale, operator.dims[dim])
        return tiles

    def footprint(tiles: Dict[str, int]) -> int:
        return Tiling(tiles).buffer_footprint(operator)

    upper = max((operator.dims[dim] for dim in grown_dims), default=1)
    scale = max_feasible(
        lambda s: footprint(tiling_for(s)), upper, buffer_elems
    )
    if scale is None:
        return []
    base = tiling_for(scale)
    variants: Dict[Tuple[int, ...], Dict[str, int]] = {}

    def register(tiles: Dict[str, int]) -> None:
        if footprint(tiles) <= buffer_elems:
            key = tuple(tiles[dim] for dim in operator.dim_names)
            variants.setdefault(key, dict(tiles))

    register(base)
    orders = list(itertools.permutations(grown_dims))
    if len(orders) > 6:
        orders = orders[:6]
    for order in orders:
        tiles = dict(base)
        for dim in order:
            if tiles[dim] >= operator.dims[dim]:
                continue

            def grow(tile: int, target=dim, state=tiles) -> int:
                trial = dict(state)
                trial[target] = tile
                return footprint(trial)

            grown = max_feasible(grow, operator.dims[dim], buffer_elems)
            if grown is not None:
                tiles[dim] = grown
        register(tiles)
        # Snap each grown dim to the smallest tile with the same trip
        # count, then regrow the remaining dims with the freed footprint.
        snapped = {
            dim: (
                _ceil_div(
                    operator.dims[dim], _ceil_div(operator.dims[dim], tile)
                )
                if dim in grown_dims
                else tile
            )
            for dim, tile in tiles.items()
        }
        for dim in order:
            if snapped[dim] >= operator.dims[dim]:
                continue

            def regrow(tile: int, target=dim, state=snapped) -> int:
                trial = dict(state)
                trial[target] = tile
                return footprint(trial)

            grown = max_feasible(regrow, operator.dims[dim], buffer_elems)
            if grown is not None:
                snapped[dim] = grown
        register(snapped)
    return [Tiling(tiles) for tiles in variants.values()]


def _schedule_with_outer(
    operator: TensorOperator, outer_dims: Tuple[str, ...]
) -> Schedule:
    """Schedule with ``outer_dims`` first, remaining dims innermost."""
    inner = [dim for dim in operator.dim_names if dim not in outer_dims]
    return Schedule(tuple(outer_dims) + tuple(inner))


def generic_candidates(
    operator: TensorOperator, buffer_elems: int
) -> List[GenericCandidate]:
    """All generalized principle candidates that fit the buffer."""
    candidates: List[GenericCandidate] = []
    all_dims = tuple(operator.dim_names)

    # Principle 1 analogue: stationary candidates per tensor (one per
    # integer-refined tiling variant).
    for tensor in operator.tensors:
        dims = tuple(operator.dims_of(tensor.name))
        if set(dims) == set(all_dims):
            continue  # indexed by everything: cannot be stationary
        schedule = _schedule_with_outer(operator, dims)
        for tiling in _balanced_scale_tilings(operator, dims, buffer_elems):
            candidates.append(
                GenericCandidate(
                    label=f"stationary[{tensor.name}]",
                    dataflow=Dataflow(tiling, schedule),
                )
            )

    # Principle 2 analogue: (untiled dim, maximized dim) pairs.
    for untiled in all_dims:
        for maximized in all_dims:
            if maximized == untiled:
                continue

            def footprint(tile: int, grown=maximized, whole=untiled) -> int:
                tiles = {dim: 1 for dim in all_dims}
                tiles[whole] = operator.dims[whole]
                tiles[grown] = tile
                return Tiling(tiles).buffer_footprint(operator)

            tile = max_feasible(footprint, operator.dims[maximized], buffer_elems)
            if tile is None:
                continue
            tiles = {dim: 1 for dim in all_dims}
            tiles[untiled] = operator.dims[untiled]
            tiles[maximized] = tile
            order = (maximized,) + tuple(
                dim for dim in all_dims if dim not in (maximized, untiled)
            ) + (untiled,)
            candidates.append(
                GenericCandidate(
                    label=f"untile[{untiled}, max {maximized}]",
                    dataflow=Dataflow(Tiling(tiles), Schedule(order)),
                )
            )

    # Principle 3 analogue: one resident candidate per tensor.
    for tensor in operator.tensors:
        dims = set(operator.dims_of(tensor.name))
        tiles = {
            dim: (operator.dims[dim] if dim in dims else 1) for dim in all_dims
        }
        tiling = Tiling(tiles)
        if tiling.buffer_footprint(operator) > buffer_elems:
            continue
        order = tuple(dim for dim in all_dims if dim not in dims) + tuple(
            dim for dim in all_dims if dim in dims
        )
        candidates.append(
            GenericCandidate(
                label=f"resident[{tensor.name}]",
                dataflow=Dataflow(tiling, Schedule(order)),
            )
        )

    # Full Three-NRA analogue: stream one dim, keep every other dim whole.
    # Everything becomes non-redundant (the only effective loop indexes --
    # or is invisible to -- every tensor), reaching the ideal MA whenever
    # the residual footprint fits; for MM these are exactly the Three-NRA
    # candidates.
    for streamed in all_dims:
        tiles = {
            dim: (1 if dim == streamed else operator.dims[dim])
            for dim in all_dims
        }
        tiling = Tiling(tiles)
        if tiling.buffer_footprint(operator) > buffer_elems:
            continue
        order = (streamed,) + tuple(d for d in all_dims if d != streamed)
        candidates.append(
            GenericCandidate(
                label=f"stream[{streamed}]",
                dataflow=Dataflow(tiling, Schedule(order)),
            )
        )
    return candidates


def optimize_generic(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> IntraResult:
    """Principle-based optimization for arbitrary einsum-like operators.

    Dispatches to the exact MM path / streaming path when applicable, so it
    is safe to use as the universal entry point.
    """

    if buffer_elems <= 0:
        raise ValueError("buffer size must be positive")
    if is_mm_like(operator):
        from .intra import optimize_intra

        return optimize_intra(operator, buffer_elems, convention)
    if is_streaming(operator):
        dataflow = streaming_dataflow(operator)
        return IntraResult(
            operator=operator,
            dataflow=dataflow,
            report=memory_access(operator, dataflow, convention),
            regime=None,
            label="streaming",
        )
    best: Optional[Tuple[GenericCandidate, MemoryAccessReport]] = None
    for candidate in generic_candidates(operator, buffer_elems):
        report = memory_access(operator, candidate.dataflow, convention)
        if best is None or report.total < best[1].total:
            best = (candidate, report)
    if best is None:
        raise InfeasibleError(
            f"no generic dataflow for {operator.name!r} fits a buffer of "
            f"{buffer_elems} elements"
        )
    candidate, report = best
    return IntraResult(
        operator=operator,
        dataflow=candidate.dataflow,
        report=report,
        regime=None,
        label=candidate.label,
    )
