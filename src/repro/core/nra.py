"""Closed-form NRA dataflow constructors (paper Sec. III-A).

For an MM-like operator (three loop dims, three rank-2 operands, each
indexed by a distinct dim pair) there are exactly twelve candidate optimal
dataflows:

* 3 Single-NRA -- one per stationary-tensor choice (Principle 1),
* 6 Two-NRA   -- one per (untiled dim, maximized dim) pair (Principle 2),
* 3 Three-NRA -- one per fully-resident tensor choice (Principle 3).

Each constructor solves its tile sizes directly from the buffer constraint
(a one-dimensional or symmetric two-dimensional monotone problem, solved by
binary search on the exact integer footprint -- no design-space search).
The intra-operator optimizer evaluates the feasible candidates through the
shared access counter and keeps the minimum; this *is* the paper's
principle-based one-shot optimization, since the candidate count is a small
constant independent of tensor sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from ..ir.operator import TensorOperator
from ..ir.tensor import Tensor
from ..dataflow.scheduling import Schedule, stationary_schedule
from ..dataflow.spec import Dataflow, NRAClass
from ..dataflow.tiling import Tiling

#: Bound of the process-wide closed-form lookup cache (entries).
NRA_CACHE_SIZE = 16384


class UnsupportedOperatorError(ValueError):
    """Raised when closed-form analysis does not cover an operator shape."""


def is_mm_like(operator: TensorOperator) -> bool:
    """True for operators with the matmul structure the closed forms cover."""
    if len(operator.dims) != 3 or len(operator.tensors) != 3:
        return False
    pairs = set()
    for tensor in operator.tensors:
        dims = operator.dims_of(tensor.name)
        if len(dims) != 2 or len(set(dims)) != 2:
            return False
        pairs.add(frozenset(dims))
    return len(pairs) == 3


def is_streaming(operator: TensorOperator) -> bool:
    """True for operators every tensor of which is indexed by every dim.

    Such operators (elementwise, softmax) have no reuse to exploit: any
    streaming tiling touches each tensor exactly once.
    """

    all_dims = set(operator.dims)
    return all(
        set(operator.dims_of(tensor.name)) == all_dims
        for tensor in operator.tensors
    ) and not operator.reduction_dims


def _require_mm_like(operator: TensorOperator) -> None:
    if not is_mm_like(operator):
        raise UnsupportedOperatorError(
            f"operator {operator.name!r} is not MM-like; use repro.search for "
            "general shapes"
        )


def _evaluate(operator: TensorOperator, dataflow: Dataflow) -> int:
    """Exact per-instance access count (used to rank integer candidates)."""
    from ..dataflow.cost import memory_access

    return memory_access(operator, dataflow).per_instance_total


def _other_dim(operator: TensorOperator, dims: Tuple[str, ...]) -> str:
    remaining = [d for d in operator.dim_names if d not in dims]
    if len(remaining) != 1:
        raise UnsupportedOperatorError(
            f"dims {dims} do not leave a unique remaining dim in "
            f"{operator.dim_names}"
        )
    return remaining[0]


# ----------------------------------------------------------------------
# Integer tile solvers (monotone footprint => binary search)
# ----------------------------------------------------------------------
def max_feasible(
    footprint: Callable[[int], int], upper: int, budget: int
) -> Optional[int]:
    """Largest ``t`` in [1, upper] with ``footprint(t) <= budget``."""
    if upper < 1 or footprint(1) > budget:
        return None
    low, high = 1, upper
    while low < high:
        mid = (low + high + 1) // 2
        if footprint(mid) <= budget:
            low = mid
        else:
            high = mid - 1
    return low


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


def pair_candidates(
    footprint: Callable[[int, int], int],
    upper_x: int,
    upper_y: int,
    budget: int,
    max_trip_delta: int = 4,
) -> List[Tuple[int, int]]:
    """Integer-refined candidate tile pairs under a footprint budget.

    The continuous optimum of the Single-NRA objective (Eq. 1, minimize
    ``1/tx + 1/ty``) is a balanced pair, but memory access depends on the
    *ceiled* trip counts ``ceil(D/t)``; a slightly smaller tile with the
    same trip count frees footprint that can lower the partner's trip
    count.  This helper returns the balanced/grown solutions plus
    trip-count-snapped perturbations of each; callers evaluate all of them
    through the exact access counter and keep the best (still a constant
    amount of work -- no design-space search).
    """

    def balanced(t: int) -> int:
        return footprint(min(t, upper_x), min(t, upper_y))

    base = max_feasible(balanced, max(upper_x, upper_y), budget)
    if base is None:
        return []
    seeds: List[Tuple[int, int]] = []
    tx = min(base, upper_x)
    grown_y = max_feasible(lambda t: footprint(tx, t), upper_y, budget)
    if grown_y is not None:
        seeds.append((tx, grown_y))
    ty = min(base, upper_y)
    grown_x = max_feasible(lambda t: footprint(t, ty), upper_x, budget)
    if grown_x is not None:
        seeds.append((grown_x, ty))
    if not seeds:
        return []

    candidates: set = set()

    def snap(extent: int, tile: int) -> int:
        """Smallest tile with the same trip count (minimal footprint)."""
        return _ceil_div(extent, _ceil_div(extent, tile))

    def add(tile_x: int, tile_y: int) -> None:
        tile_x = max(1, min(tile_x, upper_x))
        tile_y = max(1, min(tile_y, upper_y))
        if footprint(tile_x, tile_y) <= budget:
            candidates.add((tile_x, tile_y))

    for seed_x, seed_y in seeds:
        add(seed_x, seed_y)
        trips_x = _ceil_div(upper_x, seed_x)
        trips_y = _ceil_div(upper_y, seed_y)
        for delta in range(max_trip_delta + 1):
            # Coarsen x's trips, regrow and snap y.
            tile_x = _ceil_div(upper_x, trips_x + delta)
            regrown = max_feasible(
                lambda t, tx=tile_x: footprint(tx, t), upper_y, budget
            )
            if regrown is not None:
                add(tile_x, snap(upper_y, regrown))
                add(tile_x, regrown)
            # Coarsen y's trips, regrow and snap x.
            tile_y = _ceil_div(upper_y, trips_y + delta)
            regrown_x = max_feasible(
                lambda t, ty=tile_y: footprint(t, ty), upper_x, budget
            )
            if regrown_x is not None:
                add(snap(upper_x, regrown_x), tile_y)
                add(regrown_x, tile_y)

    # Exactness sweep for small problems: any optimal pair has its smaller
    # tile bounded by the balanced edge (+1), and for a fixed tile on one
    # dim the other is best grown to its feasible maximum; the distinct
    # ceil-tile values of a dimension number only ~2*sqrt(D), so when that
    # is small we can cover the whole reduced space exactly.  This closes
    # the tiny-buffer corner where the delta window misses joint
    # coarsen-one / grow-the-other moves (found by hypothesis against the
    # exact branch-and-bound certifier).
    def distinct_tiles(extent: int, cap: int):
        """All distinct values of ``ceil(extent / n)``, largest first."""
        values = []
        trips = 1
        while len(values) < cap:
            tile = _ceil_div(extent, trips)
            values.append(tile)
            if tile == 1:
                break
            # Smallest trip count yielding a strictly smaller tile.
            trips = _ceil_div(extent, tile - 1)
        return values

    sweep_cap = 96
    if 2 * math.isqrt(upper_x) + 2 <= sweep_cap:
        for tile_x in distinct_tiles(upper_x, sweep_cap):
            grown = max_feasible(
                lambda t, tx=tile_x: footprint(tx, t), upper_y, budget
            )
            if grown is not None:
                add(tile_x, snap(upper_y, grown))
                add(tile_x, grown)
    if 2 * math.isqrt(upper_y) + 2 <= sweep_cap:
        for tile_y in distinct_tiles(upper_y, sweep_cap):
            grown_x = max_feasible(
                lambda t, ty=tile_y: footprint(t, ty), upper_x, budget
            )
            if grown_x is not None:
                add(snap(upper_x, grown_x), tile_y)
                add(grown_x, tile_y)
    return sorted(candidates)


def max_feasible_pair(
    footprint: Callable[[int, int], int],
    upper_x: int,
    upper_y: int,
    budget: int,
) -> Optional[Tuple[int, int]]:
    """Largest balanced tile pair under a budget (continuous-objective pick).

    Returns the candidate minimizing ``1/tx + 1/ty`` among
    :func:`pair_candidates`; callers that can score exactly should iterate
    over :func:`pair_candidates` instead.
    """

    candidates = pair_candidates(footprint, upper_x, upper_y, budget)
    if not candidates:
        return None
    return min(candidates, key=lambda pair: 1 / pair[0] + 1 / pair[1])


# ----------------------------------------------------------------------
# Candidate constructors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NRACandidate:
    """One closed-form candidate dataflow."""

    label: str
    nra: NRAClass
    dataflow: Dataflow

    def describe(self, operator: TensorOperator) -> str:
        return f"{self.label}: {self.dataflow.describe(operator)}"


def _single_nra_impl(
    operator: TensorOperator, stationary: str, buffer_elems: int
) -> Optional[NRACandidate]:
    _require_mm_like(operator)
    dim_x, dim_y = operator.dims_of(stationary)
    dim_z = _other_dim(operator, (dim_x, dim_y))

    def footprint(tile_x: int, tile_y: int) -> int:
        tiling = Tiling({dim_x: tile_x, dim_y: tile_y, dim_z: 1})
        return tiling.buffer_footprint(operator)

    pairs = pair_candidates(
        footprint, operator.dims[dim_x], operator.dims[dim_y], buffer_elems
    )
    if not pairs:
        return None
    schedule = stationary_schedule(operator, stationary)
    best: Optional[Tuple[int, Dataflow]] = None
    for tile_x, tile_y in pairs:
        dataflow = Dataflow(
            Tiling({dim_x: tile_x, dim_y: tile_y, dim_z: 1}), schedule
        )
        total = _evaluate(operator, dataflow)
        if best is None or total < best[0]:
            best = (total, dataflow)
    assert best is not None
    return NRACandidate(
        label=f"single[{stationary}]",
        nra=NRAClass.SINGLE,
        dataflow=best[1],
    )


def _two_nra_impl(
    operator: TensorOperator,
    untiled_dim: str,
    maximized_dim: str,
    buffer_elems: int,
) -> Optional[NRACandidate]:
    _require_mm_like(operator)
    dim_y = _other_dim(operator, (untiled_dim, maximized_dim))

    def footprint(tile_x: int) -> int:
        tiling = Tiling(
            {
                untiled_dim: operator.dims[untiled_dim],
                maximized_dim: tile_x,
                dim_y: 1,
            }
        )
        return tiling.buffer_footprint(operator)

    tile_x = max_feasible(footprint, operator.dims[maximized_dim], buffer_elems)
    if tile_x is None:
        return None
    tiling = Tiling(
        {
            untiled_dim: operator.dims[untiled_dim],
            maximized_dim: tile_x,
            dim_y: 1,
        }
    )
    schedule = Schedule((maximized_dim, dim_y, untiled_dim))
    return NRACandidate(
        label=f"two[untile {untiled_dim}, max {maximized_dim}]",
        nra=NRAClass.TWO,
        dataflow=Dataflow(tiling, schedule),
    )


def _three_nra_impl(
    operator: TensorOperator, resident: str, buffer_elems: int
) -> Optional[NRACandidate]:
    _require_mm_like(operator)
    dim_x, dim_y = operator.dims_of(resident)
    dim_z = _other_dim(operator, (dim_x, dim_y))
    tiling = Tiling(
        {
            dim_x: operator.dims[dim_x],
            dim_y: operator.dims[dim_y],
            dim_z: 1,
        }
    )
    if tiling.buffer_footprint(operator) > buffer_elems:
        return None
    schedule = Schedule((dim_z, dim_x, dim_y))
    return NRACandidate(
        label=f"three[resident {resident}]",
        nra=NRAClass.THREE,
        dataflow=Dataflow(tiling, schedule),
    )


# ----------------------------------------------------------------------
# Memoized public lookups
# ----------------------------------------------------------------------
# :class:`TensorOperator` holds dict fields and is not hashable, so the
# ``functools.lru_cache`` below keys on a structural description instead
# and rebuilds an equivalent operator inside the cached call.  Candidates
# only reference dim names, tensor names, and tile sizes -- all part of
# the key -- so one cached :class:`NRACandidate` is valid for every
# operator with the same structure (sweeps ask for the same shapes at the
# same buffer sizes thousands of times).
def _operator_key(operator: TensorOperator) -> Tuple:
    tensors = operator.tensors
    return (
        tuple(operator.dims.items()),
        tuple(
            (tensor.name, tuple(operator.indexing[tensor.name]), tensor.dtype_bytes)
            for tensor in tensors
        ),
        tuple(sorted(operator.reduction_dims)),
        operator.count,
        operator.flops_per_point,
    )


def _operator_from_key(key: Tuple) -> TensorOperator:
    dims_items, tensor_specs, reductions, count, flops = key
    dims = dict(dims_items)
    tensors = [
        Tensor(name, tuple(dims[dim] for dim in index_dims), dtype_bytes)
        for name, index_dims, dtype_bytes in tensor_specs
    ]
    return TensorOperator(
        name="nra-cache",
        dims=dims,
        inputs=tuple(tensors[:-1]),
        output=tensors[-1],
        indexing={name: tuple(index_dims) for name, index_dims, _ in tensor_specs},
        reduction_dims=frozenset(reductions),
        count=count,
        flops_per_point=flops,
    )


@lru_cache(maxsize=NRA_CACHE_SIZE)
def _cached_closed_form(
    kind: str,
    key: Tuple,
    arg_x: str,
    arg_y: Optional[str],
    buffer_elems: int,
) -> Optional[NRACandidate]:
    operator = _operator_from_key(key)
    if kind == "single":
        return _single_nra_impl(operator, arg_x, buffer_elems)
    if kind == "two":
        return _two_nra_impl(operator, arg_x, arg_y, buffer_elems)
    return _three_nra_impl(operator, arg_x, buffer_elems)


def nra_cache_info():
    """``functools.lru_cache`` counters of the closed-form lookup cache."""
    return _cached_closed_form.cache_info()


def clear_nra_cache() -> None:
    """Drop all cached closed-form lookups (mainly for tests/benchmarks)."""
    _cached_closed_form.cache_clear()


def single_nra(
    operator: TensorOperator, stationary: str, buffer_elems: int
) -> Optional[NRACandidate]:
    """Principle 1 dataflow with ``stationary`` (tensor name) resident.

    Maximizes the stationary tensor's tile dims jointly, minimizes the
    remaining dim's tile (Eq. 1 / Eq. 2).  Returns ``None`` when even the
    minimal working set overflows the buffer.
    """

    _require_mm_like(operator)
    return _cached_closed_form(
        "single", _operator_key(operator), stationary, None, buffer_elems
    )


def two_nra(
    operator: TensorOperator,
    untiled_dim: str,
    maximized_dim: str,
    buffer_elems: int,
) -> Optional[NRACandidate]:
    """Principle 2 dataflow: ``untiled_dim`` whole, ``maximized_dim`` grown.

    The redundant tensor is the one containing ``untiled_dim`` but not
    ``maximized_dim``; the other two are accessed exactly once (Eq. 3 /
    Eq. 4).
    """

    _require_mm_like(operator)
    if untiled_dim == maximized_dim:
        raise ValueError("untiled and maximized dims must differ")
    return _cached_closed_form(
        "two", _operator_key(operator), untiled_dim, maximized_dim, buffer_elems
    )


def three_nra(
    operator: TensorOperator, resident: str, buffer_elems: int
) -> Optional[NRACandidate]:
    """Principle 3 dataflow with tensor ``resident`` held entirely on-chip.

    Both of the resident tensor's dims are untiled; the remaining dim's tile
    does not affect memory access (Principle 3: "Tiling: do not care"), so
    the minimal footprint (tile 1) is used.
    """

    _require_mm_like(operator)
    return _cached_closed_form(
        "three", _operator_key(operator), resident, None, buffer_elems
    )


def all_candidates(
    operator: TensorOperator, buffer_elems: int
) -> List[NRACandidate]:
    """All feasible closed-form candidates (at most twelve)."""
    _require_mm_like(operator)
    candidates: List[NRACandidate] = []
    for tensor in operator.tensors:
        candidate = single_nra(operator, tensor.name, buffer_elems)
        if candidate is not None:
            candidates.append(candidate)
    for untiled in operator.dim_names:
        for maximized in operator.dim_names:
            if maximized == untiled:
                continue
            candidate = two_nra(operator, untiled, maximized, buffer_elems)
            if candidate is not None:
                candidates.append(candidate)
    for tensor in operator.tensors:
        candidate = three_nra(operator, tensor.name, buffer_elems)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def streaming_dataflow(operator: TensorOperator) -> Dataflow:
    """Trivial non-redundant dataflow for streaming (elementwise) operators."""
    if not is_streaming(operator):
        raise UnsupportedOperatorError(
            f"operator {operator.name!r} is not a streaming operator"
        )
    tiling = Tiling({dim: 1 for dim in operator.dim_names})
    return Dataflow(tiling, Schedule(tuple(operator.dim_names)))
