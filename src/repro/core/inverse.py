"""Inverse buffer-sizing queries on the MA(BS) lower-bound curve.

The principles give, for every buffer size, the communication lower bound
MA(BS) -- a monotone non-increasing staircase.  Architects usually ask the
*inverse* questions:

* "how much buffer do I need to hit the ideal (every tensor once)?"
  -- :func:`minimal_buffer_for_ideal`;
* "how much buffer do I need to get within X of the ideal?"
  -- :func:`minimal_buffer_for`;
* "what does the whole trade-off look like?"
  -- :func:`pareto_curve` (the distinct (BS, MA) corner points).

All answers come from binary search on the monotone curve, so they inherit
the one-shot optimizer's exactness over the modeled space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention
from .intra import InfeasibleError, optimize_intra


def _ma_at(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention,
) -> Optional[int]:
    try:
        return optimize_intra(operator, buffer_elems, convention).memory_access
    except InfeasibleError:
        return None


def minimal_buffer_for(
    operator: TensorOperator,
    target_ma: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    upper_bound: Optional[int] = None,
) -> Optional[int]:
    """Smallest buffer (elements) whose lower bound meets ``target_ma``.

    Returns ``None`` when the target is below the infinite-buffer ideal
    (unreachable).  ``upper_bound`` defaults to the full-residency
    footprint, beyond which MA cannot improve.
    """

    if target_ma < operator.ideal_memory_access():
        return None
    if upper_bound is None:
        upper_bound = sum(tensor.size for tensor in operator.tensors)
    achieved = _ma_at(operator, upper_bound, convention)
    if achieved is None or achieved > target_ma:
        return None
    low, high = 1, upper_bound
    while low < high:
        mid = (low + high) // 2
        value = _ma_at(operator, mid, convention)
        if value is not None and value <= target_ma:
            high = mid
        else:
            low = mid + 1
    return low


def minimal_buffer_for_ideal(
    operator: TensorOperator,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> int:
    """Smallest buffer achieving the infinite-buffer ideal MA.

    Analytically this is the Three-NRA threshold -- the smallest tensor
    plus its streaming strips (paper Sec. III-A3) -- and the binary search
    recovers exactly that.
    """

    result = minimal_buffer_for(
        operator, operator.ideal_memory_access(), convention
    )
    assert result is not None  # the full-residency bound always achieves it
    return result


@dataclass(frozen=True)
class ParetoPoint:
    """One corner of the buffer-size / memory-access trade-off."""

    buffer_elems: int
    memory_access: int


def pareto_curve(
    operator: TensorOperator,
    max_points: int = 32,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> List[ParetoPoint]:
    """Corner points of MA(BS), from the minimal feasible buffer up to the
    ideal-reaching buffer.

    Recursively bisects the buffer axis until adjacent samples agree or the
    point budget runs out, so flat regions cost one probe while staircase
    steps are localized.
    """

    upper = minimal_buffer_for_ideal(operator, convention)
    low = 1
    while _ma_at(operator, low, convention) is None:
        low *= 2
        if low > upper:
            low = upper
            break
    samples: dict = {}

    def sample(buffer_elems: int) -> int:
        if buffer_elems not in samples:
            value = _ma_at(operator, buffer_elems, convention)
            assert value is not None
            samples[buffer_elems] = value
        return samples[buffer_elems]

    def refine(lo: int, hi: int) -> None:
        if hi - lo <= 1 or len(samples) >= max_points:
            return
        if sample(lo) == sample(hi):
            return
        mid = (lo + hi) // 2
        sample(mid)
        refine(lo, mid)
        refine(mid, hi)

    sample(low)
    sample(upper)
    refine(low, upper)
    points = [
        ParetoPoint(buffer_elems=b, memory_access=ma)
        for b, ma in sorted(samples.items())
    ]
    # Keep only corners: drop samples equal to their predecessor's MA.
    corners: List[ParetoPoint] = []
    for point in points:
        if corners and corners[-1].memory_access == point.memory_access:
            continue
        corners.append(point)
    return corners
