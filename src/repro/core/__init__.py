"""The paper's primary contribution: principle-based dataflow optimization.

Public surface:

* :func:`~repro.core.intra.optimize_intra` / :func:`~repro.core.intra.one_shot_dataflow`
  -- intra-operator optimum (Principles 1-3).
* :func:`~repro.core.fusion.decide_fusion` / :func:`~repro.core.fusion.optimize_fused`
  -- inter-operator fusion profitability (Principle 4, Fig. 4 patterns).
* :func:`~repro.core.graph_optimizer.optimize_graph` -- graph-level planning.
* :func:`~repro.core.lower_bound.intra_lower_bound` /
  :func:`~repro.core.lower_bound.graph_lower_bound` -- communication bounds.
* :func:`~repro.core.regimes.classify_buffer` -- the four buffer regimes.
"""

from ..ir.operator import InvalidWorkloadError, validate_buffer_elems
from .regimes import BufferRegime, RegimeReport, classify_buffer
from .nra import (
    NRACandidate,
    UnsupportedOperatorError,
    all_candidates,
    is_mm_like,
    is_streaming,
    single_nra,
    streaming_dataflow,
    three_nra,
    two_nra,
)
from .intra import InfeasibleError, IntraResult, one_shot_dataflow, optimize_intra
from .principles import (
    ALL_PRINCIPLES,
    Principle,
    optimal_nra_class,
    principle1,
    principle2,
    principle3,
    principle4,
    principle4_same_nra,
    regime_summary,
)
from .fusion import (
    FusionMedium,
    FusedPattern,
    FusedResult,
    FusionDecision,
    Role,
    cross_patterns,
    decide_fusion,
    optimize_fused,
    per_op_nra_classes,
    profitable_patterns,
    solve_pattern,
)
from .graph_optimizer import (
    GraphPlan,
    Segment,
    optimize_chain,
    optimize_graph,
    principle4_predicate,
)
from .generic import GenericCandidate, generic_candidates, optimize_generic
from .multilevel import (
    TwoLevelResult,
    max_useful_untiled_dim,
    optimize_two_level,
    untiling_is_optimal_at_registers,
)
from .explain import explain_fusion, explain_intra
from .inverse import ParetoPoint, minimal_buffer_for, minimal_buffer_for_ideal, pareto_curve
from .lower_bound import (
    CurvePoint,
    closed_form_curve,
    graph_lower_bound,
    intra_lower_bound,
    shift_point_band,
    three_nra_threshold,
)

__all__ = [
    "explain_fusion",
    "explain_intra",
    "FusionMedium",
    "ParetoPoint",
    "minimal_buffer_for",
    "minimal_buffer_for_ideal",
    "pareto_curve",
    "GenericCandidate",
    "generic_candidates",
    "optimize_generic",
    "TwoLevelResult",
    "max_useful_untiled_dim",
    "optimize_two_level",
    "untiling_is_optimal_at_registers",
    "BufferRegime",
    "RegimeReport",
    "classify_buffer",
    "NRACandidate",
    "UnsupportedOperatorError",
    "all_candidates",
    "is_mm_like",
    "is_streaming",
    "single_nra",
    "streaming_dataflow",
    "three_nra",
    "two_nra",
    "InfeasibleError",
    "InvalidWorkloadError",
    "IntraResult",
    "validate_buffer_elems",
    "one_shot_dataflow",
    "optimize_intra",
    "ALL_PRINCIPLES",
    "Principle",
    "optimal_nra_class",
    "principle1",
    "principle2",
    "principle3",
    "principle4",
    "principle4_same_nra",
    "regime_summary",
    "FusedPattern",
    "FusedResult",
    "FusionDecision",
    "Role",
    "cross_patterns",
    "decide_fusion",
    "optimize_fused",
    "per_op_nra_classes",
    "profitable_patterns",
    "solve_pattern",
    "GraphPlan",
    "Segment",
    "optimize_chain",
    "optimize_graph",
    "principle4_predicate",
    "CurvePoint",
    "closed_form_curve",
    "graph_lower_bound",
    "intra_lower_bound",
    "shift_point_band",
    "three_nra_threshold",
]
