"""Graph-level fusion planning.

Applies the principle-based optimizers across an operator graph: each
maximal chain is segmented into fusion groups by dynamic programming over
segment memory-access costs, where

* a length-1 segment costs its intra-operator optimum
  (:func:`repro.core.intra.optimize_intra`), and
* a longer segment costs its best fused dataflow
  (:func:`repro.core.fusion.optimize_fused`), infinite when nothing fits.

With ``fusion_predicate`` set to the Principle 4 test the planner behaves
exactly like the paper (fuse only same-NRA neighbors, applied pairwise);
left as ``None`` it fuses whenever fusion measurably wins, which the test
suite uses to confirm Principle 4 and the measured decision agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..ir.graph import OperatorGraph
from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention
from .fusion import FusedResult, FusionMedium
from .intra import InfeasibleError, IntraResult
from .nra import UnsupportedOperatorError
from .principles import principle4_same_nra

SegmentResult = Union[IntraResult, FusedResult]
FusionPredicate = Callable[[TensorOperator, TensorOperator], bool]


@dataclass(frozen=True)
class Segment:
    """One fusion group in a plan (a single op or a fused chain)."""

    ops: Tuple[TensorOperator, ...]
    result: SegmentResult

    @property
    def fused(self) -> bool:
        return len(self.ops) > 1

    @property
    def memory_access(self) -> int:
        return self.result.memory_access

    def describe(self) -> str:
        return self.result.describe()


@dataclass(frozen=True)
class GraphPlan:
    """A fusion/segmentation plan for a whole operator graph."""

    graph_name: str
    segments: Tuple[Segment, ...]

    @property
    def memory_access(self) -> int:
        return sum(segment.memory_access for segment in self.segments)

    @property
    def fused_segments(self) -> Tuple[Segment, ...]:
        return tuple(segment for segment in self.segments if segment.fused)

    def describe(self) -> str:
        lines = [f"plan[{self.graph_name}]: total MA={self.memory_access}"]
        lines.extend("  " + segment.describe() for segment in self.segments)
        return "\n".join(lines)


def principle4_predicate(
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> FusionPredicate:
    """A fusion predicate implementing Principle 4 at a given buffer size."""

    def predicate(producer: TensorOperator, consumer: TensorOperator) -> bool:
        return principle4_same_nra(producer, consumer, buffer_elems, convention)

    return predicate


def segment_cost(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    fusion_predicate: Optional[FusionPredicate] = None,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
) -> Optional[SegmentResult]:
    """Optimal cost of one candidate segment, or ``None`` when infeasible.

    A length-1 segment costs its intra-operator optimum; longer segments
    cost their best fused dataflow (gated by ``fusion_predicate`` when
    one is set).  Results are memoized through the process-wide caches in
    :mod:`repro.service.intra_cache` -- identical segments recur across
    chains, scenarios, and every candidate partition the DAG planners
    evaluate, so the planner's hot path is a cache lookup.  The import is
    lazy to keep :mod:`repro.core` free of module-level service imports
    (same discipline as the ``certify=`` paths).
    """

    if len(ops) == 1:
        from ..service.intra_cache import cached_optimize_intra

        try:
            return cached_optimize_intra(ops[0], buffer_elems, convention)
        except (UnsupportedOperatorError, InfeasibleError):
            return None
    if fusion_predicate is not None:
        if not all(fusion_predicate(a, b) for a, b in zip(ops, ops[1:])):
            return None
    from ..service.intra_cache import cached_optimize_fused

    return cached_optimize_fused(
        ops, buffer_elems, convention=convention,
        medium=medium, register_elems=register_elems,
    )


def _segment_cost(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    convention: PartialSumConvention,
    predicate: Optional[FusionPredicate],
    medium: FusionMedium,
    register_elems: Optional[int],
) -> Optional[SegmentResult]:
    return segment_cost(
        ops, buffer_elems, convention=convention, fusion_predicate=predicate,
        medium=medium, register_elems=register_elems,
    )


def optimize_chain(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    enable_fusion: bool = True,
    max_group: int = 3,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    fusion_predicate: Optional[FusionPredicate] = None,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
) -> Tuple[Segment, ...]:
    """Optimal segmentation of one linear chain by dynamic programming."""
    ops = tuple(ops)
    if not ops:
        return ()
    best_cost: List[float] = [float("inf")] * (len(ops) + 1)
    best_cut: List[Optional[Tuple[int, SegmentResult]]] = [None] * (len(ops) + 1)
    best_cost[0] = 0.0
    longest = max(1, max_group if enable_fusion else 1)
    for end in range(1, len(ops) + 1):
        for start in range(max(0, end - longest), end):
            if best_cost[start] == float("inf"):
                continue
            result = _segment_cost(
                ops[start:end], buffer_elems, convention, fusion_predicate,
                medium, register_elems,
            )
            if result is None:
                continue
            cost = best_cost[start] + result.memory_access
            if cost < best_cost[end]:
                best_cost[end] = cost
                best_cut[end] = (start, result)
    if best_cut[-1] is None:
        raise ValueError(
            f"no feasible plan for chain starting at {ops[0].name!r} with "
            f"buffer {buffer_elems}"
        )
    segments: List[Segment] = []
    end = len(ops)
    while end > 0:
        entry = best_cut[end]
        assert entry is not None
        start, result = entry
        segments.append(Segment(ops=ops[start:end], result=result))
        end = start
    segments.reverse()
    return tuple(segments)


def optimize_graph(
    graph: OperatorGraph,
    buffer_elems: int,
    enable_fusion: bool = True,
    max_group: int = 3,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    fusion_predicate: Optional[FusionPredicate] = None,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
) -> GraphPlan:
    """Plan the whole graph: segment every maximal chain independently."""
    segments: List[Segment] = []
    for chain in graph.chains():
        segments.extend(
            optimize_chain(
                chain,
                buffer_elems,
                enable_fusion=enable_fusion,
                max_group=max_group,
                convention=convention,
                fusion_predicate=fusion_predicate,
                medium=medium,
                register_elems=register_elems,
            )
        )
    return GraphPlan(graph_name=graph.name, segments=tuple(segments))
