"""Principle-based inter-operator (fusion) optimization (paper Sec. III-B).

Fused dataflows are generated from a small set of *patterns*, one per arrow
of paper Fig. 4, expressed as a role assignment over the fused chain's
global dimensions:

====================== ======================================= ==========
pattern                roles                                    Fig. 4
====================== ======================================= ==========
single-osis            common MAX/MAX, privates MIN             (a)
two-osis[x]            common x MAX, other MIN, privates UNTILE (b)
two-untile[u]          common u UNTILE, other MAX, privates MIN (c)
three-untile[u]        common u UNTILE, other MIN, priv. UNTILE (d)
three-resident         common UNTILE/UNTILE, privates MIN       (e)
cross-*                mixed per-operator classes               red arrows
====================== ======================================= ==========

(`common` dims are the intermediate tensor's dimensions; `private` dims
belong to a single operator, e.g. MM1's reduction K and MM2's output N.)

Tile sizes for MAXIMIZE roles are solved by binary search on the exact
fused buffer footprint -- the same one-shot construction as the intra
candidates, no design-space search.  Every generated dataflow is validated
through :func:`repro.dataflow.fusion_nest.fused_memory_access`, which also
enforces the fusability requirement (non-redundant intermediates).

:func:`decide_fusion` compares the best fused dataflow against the sum of
the operators' unfused optima and reports both the measured profitability
and the Principle 4 prediction (same NRA class).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.operator import TensorOperator, validate_buffer_elems
from ..dataflow.cost import PartialSumConvention, tensor_multiplier
from ..dataflow.fusion_nest import (
    FusedAccessReport,
    FusedChain,
    FusedDataflow,
    FusionError,
    fused_memory_access,
    _op_with_global_dims,
)
from ..dataflow.spec import NRAClass
from ..dataflow.tiling import Tiling
from .intra import IntraResult, optimize_intra
from .nra import max_feasible, pair_candidates
from .principles import principle4_same_nra


class Role(Enum):
    """Tiling role of a global dimension inside a fused pattern."""

    MAXIMIZE = "max"
    MINIMIZE = "min"
    UNTILE = "untile"


class FusionMedium(Enum):
    """Where the intermediate tensor's tile lives during fused execution.

    Paper Table I's differentiator: prior fusion frameworks (Chimera, SET,
    FLAT, DAT) keep the intermediate in the on-chip *memory* buffer; FuseCU
    holds it in the *compute unit* (PE accumulators/registers), which frees
    the buffer capacity the tile would have consumed -- letting the other
    tensors take larger tiles -- at the cost of the tile having to fit the
    register file.
    """

    MEMORY = "memory"
    COMPUTE_UNIT = "compute_unit"
    #: Try both media per pattern and keep the better dataflow -- FuseCU
    #: hardware supports register-resident intermediates *in addition to*
    #: ordinary buffered ones, so its space is the union.
    BEST = "best"


@dataclass(frozen=True)
class FusedPattern:
    """A named role assignment over a chain's global dimensions."""

    label: str
    roles: Mapping[str, Role]
    cross_nra: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "roles", dict(self.roles))


@dataclass(frozen=True)
class FusedResult:
    """Best fused dataflow found for a chain."""

    chain: FusedChain
    pattern: FusedPattern
    dataflow: FusedDataflow
    report: FusedAccessReport
    per_op_nra: Tuple[NRAClass, ...]
    #: Where the intermediate tiles lived when this dataflow was solved
    #: (never :attr:`FusionMedium.BEST`; that is resolved per candidate).
    medium: FusionMedium = FusionMedium.MEMORY
    #: Attached by the certification layer (:mod:`repro.verify`); typed
    #: loosely to keep :mod:`repro.core` import-cycle-free.
    certificate: Optional[Any] = field(default=None, compare=False)

    @property
    def memory_access(self) -> int:
        return self.report.total

    def describe(self) -> str:
        ops = "+".join(op.name for op in self.chain.ops)
        return (
            f"fused[{ops}] pattern={self.pattern.label} "
            f"MA={self.memory_access} [{self.dataflow.describe(self.chain)}]"
        )


# ----------------------------------------------------------------------
# Pattern generation
# ----------------------------------------------------------------------
def _chain_private_dims(chain: FusedChain) -> Tuple[str, ...]:
    common = set(chain.common_dims)
    privates: List[str] = []
    for index in range(len(chain.ops)):
        for dim in chain.op_global_dims(index):
            if dim not in common and dim not in privates:
                privates.append(dim)
    return tuple(privates)


def profitable_patterns(chain: FusedChain) -> List[FusedPattern]:
    """The five same-NRA patterns of Fig. 4 (green arrows), both orientations."""
    common = chain.common_dims
    if len(common) != 2:
        raise FusionError(
            f"fused patterns require exactly two common dims; chain has "
            f"{common}"
        )
    privates = _chain_private_dims(chain)
    first, second = common
    patterns: List[FusedPattern] = []

    def make(label: str, common_roles: Dict[str, Role], private_role: Role) -> None:
        roles = dict(common_roles)
        roles.update({dim: private_role for dim in privates})
        patterns.append(FusedPattern(label=label, roles=roles))

    make(
        "single-osis",
        {first: Role.MAXIMIZE, second: Role.MAXIMIZE},
        Role.MINIMIZE,
    )
    for maximized, minimized in ((first, second), (second, first)):
        make(
            f"two-osis[{maximized}]",
            {maximized: Role.MAXIMIZE, minimized: Role.MINIMIZE},
            Role.UNTILE,
        )
    for untiled, maximized in ((first, second), (second, first)):
        make(
            f"two-untile[{untiled}]",
            {untiled: Role.UNTILE, maximized: Role.MAXIMIZE},
            Role.MINIMIZE,
        )
    for untiled, minimized in ((first, second), (second, first)):
        make(
            f"three-untile[{untiled}]",
            {untiled: Role.UNTILE, minimized: Role.MINIMIZE},
            Role.UNTILE,
        )
    make(
        "three-resident",
        {first: Role.UNTILE, second: Role.UNTILE},
        Role.MINIMIZE,
    )
    return patterns


def cross_patterns(chain: FusedChain) -> List[FusedPattern]:
    """Cross-NRA fusable patterns (Fig. 4 red arrows), for pairs only.

    These are feasible but predicted non-profitable by Principle 4; they are
    generated so the profitability claim can be *demonstrated* rather than
    assumed (see ``benchmarks/test_ablation_fusion.py``).
    """

    if len(chain.ops) != 2:
        return []
    common = chain.common_dims
    if len(common) != 2:
        return []
    first, second = common
    producer_privates = tuple(
        dim for dim in chain.op_global_dims(0) if dim not in common
    )
    consumer_privates = tuple(
        dim for dim in chain.op_global_dims(1) if dim not in common
    )
    patterns: List[FusedPattern] = []

    def make(label: str, roles: Dict[str, Role]) -> None:
        patterns.append(FusedPattern(label=label, roles=roles, cross_nra=True))

    # Producer Single-NRA (private dim tiled) + consumer Two-NRA (private
    # dim untiled), and the mirror image.
    base = {first: Role.MAXIMIZE, second: Role.MAXIMIZE}
    make(
        "cross-single+two",
        {
            **base,
            **{dim: Role.MINIMIZE for dim in producer_privates},
            **{dim: Role.UNTILE for dim in consumer_privates},
        },
    )
    make(
        "cross-two+single",
        {
            **base,
            **{dim: Role.UNTILE for dim in producer_privates},
            **{dim: Role.MINIMIZE for dim in consumer_privates},
        },
    )
    # Producer Two-NRA untiling a common dim + consumer Three-NRA (its
    # private dim untiled as well), and the mirror image.
    for untiled, maximized in ((first, second), (second, first)):
        make(
            f"cross-two+three[{untiled}]",
            {
                untiled: Role.UNTILE,
                maximized: Role.MAXIMIZE,
                **{dim: Role.MINIMIZE for dim in producer_privates},
                **{dim: Role.UNTILE for dim in consumer_privates},
            },
        )
        make(
            f"cross-three+two[{untiled}]",
            {
                untiled: Role.UNTILE,
                maximized: Role.MAXIMIZE,
                **{dim: Role.UNTILE for dim in producer_privates},
                **{dim: Role.MINIMIZE for dim in consumer_privates},
            },
        )
    return patterns


# ----------------------------------------------------------------------
# Tile solving and evaluation
# ----------------------------------------------------------------------
def _shared_order(chain: FusedChain, roles: Mapping[str, Role]) -> Tuple[str, ...]:
    """Default shared-loop order: role priority (MAXIMIZE outermost).

    This is a sensible default for solving a single pattern, but it is not
    always the cheapest order -- a tensor indexed by only one common dim is
    re-swept by common loops ordered before that dim, so
    :func:`optimize_fused` enumerates every permutation of the (two) common
    dims rather than trusting this heuristic (the ROADMAP counterexample
    m=43,k=2,l=19,n=23 @ 173 needs the non-priority order to reach the
    branch-and-bound optimum).
    """

    priority = {Role.MAXIMIZE: 0, Role.MINIMIZE: 1, Role.UNTILE: 2}
    return tuple(
        sorted(chain.common_dims, key=lambda dim: priority[roles[dim]])
    )


def _private_orders(chain: FusedChain) -> Dict[str, Tuple[str, ...]]:
    common = set(chain.common_dims)
    return {
        op.name: tuple(
            dim
            for dim in chain.op_global_dims(index)
            if dim not in common
        )
        for index, op in enumerate(chain.ops)
    }


def solve_pattern(
    chain: FusedChain,
    pattern: FusedPattern,
    buffer_elems: int,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
    shared_order: Optional[Tuple[str, ...]] = None,
) -> Optional[FusedDataflow]:
    """Resolve a pattern's MAXIMIZE tiles against the capacity constraints.

    With :attr:`FusionMedium.MEMORY` every tile (intermediates included)
    consumes buffer.  With :attr:`FusionMedium.COMPUTE_UNIT` the
    intermediate tiles live in the PE accumulators instead: they are
    excluded from the buffer footprint but must each fit ``register_elems``
    (the group's accumulator count).  Returns ``None`` when even the
    minimal tiles overflow.

    ``shared_order`` fixes the order of the shared (common-dim) loops;
    ``None`` uses the role-priority default (:func:`_shared_order`).  The
    order never changes feasibility (the footprint is order-invariant) but
    does change cost when a tensor is indexed by only one common dim, so
    callers chasing the exact optimum must try every permutation.
    """

    if medium is FusionMedium.BEST:
        raise FusionError(
            "solve_pattern takes a concrete medium; BEST is resolved by "
            "optimize_fused"
        )
    if medium is FusionMedium.COMPUTE_UNIT and register_elems is None:
        raise FusionError("compute-unit fusion needs register_elems")
    roles = pattern.roles
    missing = set(chain.global_dims) - set(roles)
    if missing:
        raise FusionError(f"pattern {pattern.label!r} missing roles for {missing}")
    fixed: Dict[str, int] = {}
    free: List[str] = []
    for dim, role in roles.items():
        if role is Role.UNTILE:
            fixed[dim] = chain.global_dims[dim]
        elif role is Role.MINIMIZE:
            fixed[dim] = 1
        else:
            free.append(dim)
    if shared_order is None:
        shared_order = _shared_order(chain, roles)
    private_orders = _private_orders(chain)
    intermediates = tuple(t.name for t in chain.intermediates())
    excluded = intermediates if medium is FusionMedium.COMPUTE_UNIT else ()

    def build(tiles: Mapping[str, int]) -> FusedDataflow:
        return FusedDataflow(
            shared_order=shared_order,
            private_orders=private_orders,
            tiling=Tiling({**fixed, **tiles}),
        )

    def feasible(dataflow: FusedDataflow) -> bool:
        if dataflow.buffer_footprint(chain, exclude=excluded) > buffer_elems:
            return False
        if medium is FusionMedium.COMPUTE_UNIT:
            assert register_elems is not None
            for name in intermediates:
                if dataflow.tile_elements(chain, name) > register_elems:
                    return False
        return True

    def capacity_footprint(dataflow: FusedDataflow) -> int:
        """Monotone scalar for the binary searches: the binding capacity."""
        footprint = dataflow.buffer_footprint(chain, exclude=excluded)
        if medium is FusionMedium.COMPUTE_UNIT:
            assert register_elems is not None
            for name in intermediates:
                tile = dataflow.tile_elements(chain, name)
                if tile > register_elems:
                    # Overflowed registers: report past the buffer budget so
                    # the search backs off.
                    footprint = max(footprint, buffer_elems + tile)
        return footprint

    if not free:
        dataflow = build({})
        return dataflow if feasible(dataflow) else None
    if len(free) == 1:
        dim = free[0]

        def footprint(tile: int) -> int:
            return capacity_footprint(build({dim: tile}))

        tile = max_feasible(footprint, chain.global_dims[dim], buffer_elems)
        if tile is None:
            return None
        dataflow = build({dim: tile})
        return dataflow if feasible(dataflow) else None
    if len(free) == 2:
        dim_x, dim_y = free

        def footprint2(tile_x: int, tile_y: int) -> int:
            return capacity_footprint(build({dim_x: tile_x, dim_y: tile_y}))

        pairs = pair_candidates(
            footprint2,
            chain.global_dims[dim_x],
            chain.global_dims[dim_y],
            buffer_elems,
        )
        if not pairs:
            return None
        best: Optional[Tuple[int, FusedDataflow]] = None
        for tile_x, tile_y in pairs:
            dataflow = build({dim_x: tile_x, dim_y: tile_y})
            if not feasible(dataflow):
                continue
            report = fused_memory_access(chain, dataflow)
            if not report.fusable:
                continue
            if best is None or report.total < best[0]:
                best = (report.total, dataflow)
        if best is None:
            return None
        return best[1]
    raise FusionError(
        f"pattern {pattern.label!r} has {len(free)} free dims; at most 2 supported"
    )


def per_op_nra_classes(
    chain: FusedChain, dataflow: FusedDataflow
) -> Tuple[NRAClass, ...]:
    """NRA class each operator experiences inside the fused nest."""
    classes: List[NRAClass] = []
    for index in range(len(chain.ops)):
        op = _op_with_global_dims(chain, index)
        nest = dataflow.op_nest(chain, index)
        non_redundant = sum(
            1
            for tensor in op.tensors
            if tensor_multiplier(op, nest, tensor.name) == 1
        )
        classes.append(NRAClass(max(1, min(3, non_redundant))))
    return tuple(classes)


def optimize_fused(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    include_cross: bool = False,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
    certify: bool = False,
    paranoid: bool = False,
) -> Optional[FusedResult]:
    """Best fused dataflow for a chain, or ``None`` if none fits/fuses.

    Every pattern is solved under *both* shared-loop orders: the order does
    not affect feasibility but does affect cost whenever a tensor is indexed
    by only one common dim, and the cheaper order is not always the
    role-priority one (the ROADMAP counterexample needed the reduction-dim-
    outermost order to match branch and bound).

    ``certify``/``paranoid`` route the winner through :mod:`repro.verify`:
    certification failures raise
    :class:`repro.verify.CertificationError`, and in paranoid mode a
    budgeted branch-and-bound probe that certifies a better dataflow
    replaces the analytical answer (self-healing fallback).
    """

    buffer_elems = validate_buffer_elems(buffer_elems)
    chain = FusedChain.from_ops(ops)
    if len(chain.common_dims) != 2:
        return None
    patterns = profitable_patterns(chain)
    if include_cross:
        patterns = patterns + cross_patterns(chain)
    if medium is FusionMedium.BEST:
        media = (FusionMedium.MEMORY, FusionMedium.COMPUTE_UNIT)
    else:
        media = (medium,)
    shared_orders = tuple(itertools.permutations(chain.common_dims))
    best: Optional[FusedResult] = None
    for pattern in patterns:
      for active_medium in media:
       for shared_order in shared_orders:
        excluded = (
            tuple(t.name for t in chain.intermediates())
            if active_medium is FusionMedium.COMPUTE_UNIT
            else ()
        )
        dataflow = solve_pattern(
            chain, pattern, buffer_elems, medium=active_medium,
            register_elems=register_elems, shared_order=shared_order,
        )
        if dataflow is None:
            continue
        if dataflow.buffer_footprint(chain, exclude=excluded) > buffer_elems:
            continue
        report = fused_memory_access(chain, dataflow, convention)
        if not report.fusable:
            continue
        if best is None or report.total < best.report.total:
            best = FusedResult(
                chain=chain,
                pattern=pattern,
                dataflow=dataflow,
                report=report,
                per_op_nra=per_op_nra_classes(chain, dataflow),
                medium=active_medium,
            )
    return _maybe_certify_fused(
        best, ops, buffer_elems, include_cross, convention,
        register_elems, certify, paranoid,
    )


def _maybe_certify_fused(
    result: Optional[FusedResult],
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    include_cross: bool,
    convention: PartialSumConvention,
    register_elems: Optional[int],
    certify: bool,
    paranoid: bool,
) -> Optional[FusedResult]:
    if result is None or not (certify or paranoid):
        return result
    # Lazy import: repro.verify depends on repro.core (cycle otherwise).
    from ..verify import CertificationError, certify_fused

    certified = certify_fused(
        ops,
        buffer_elems,
        result=result,
        include_cross=include_cross,
        convention=convention,
        register_elems=register_elems,
        paranoid=paranoid,
    )
    if not certified.certificate.ok:
        raise CertificationError(
            "certification failed for fused chain "
            + "+".join(op.name for op in ops)
            + ": "
            + "; ".join(certified.certificate.failure_summaries()),
            certificate=certified.certificate,
        )
    return certified.result


# ----------------------------------------------------------------------
# Profitability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusionDecision:
    """Measured and predicted profitability of fusing a chain."""

    ops: Tuple[TensorOperator, ...]
    fused: Optional[FusedResult]
    unfused: Tuple[IntraResult, ...]
    predicted_profitable: bool

    @property
    def unfused_memory_access(self) -> int:
        return sum(result.memory_access for result in self.unfused)

    @property
    def fused_memory_access(self) -> Optional[int]:
        return self.fused.memory_access if self.fused else None

    @property
    def profitable(self) -> bool:
        """Measured: does the best fused dataflow beat the unfused optima?"""
        return (
            self.fused is not None
            and self.fused.memory_access < self.unfused_memory_access
        )

    @property
    def saving(self) -> float:
        """Fractional MA saving of fusion (0 when not profitable)."""
        if not self.profitable:
            return 0.0
        assert self.fused is not None
        return 1.0 - self.fused.memory_access / self.unfused_memory_access

    def describe(self) -> str:
        ops = "+".join(op.name for op in self.ops)
        fused_ma = self.fused_memory_access
        return (
            f"fusion[{ops}]: unfused MA={self.unfused_memory_access}, "
            f"fused MA={fused_ma}, profitable={self.profitable} "
            f"(Principle 4 predicts {self.predicted_profitable})"
        )


def decide_fusion(
    ops: Sequence[TensorOperator],
    buffer_elems: int,
    include_cross: bool = False,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    medium: FusionMedium = FusionMedium.MEMORY,
    register_elems: Optional[int] = None,
    certify: bool = False,
    paranoid: bool = False,
) -> FusionDecision:
    """Evaluate fusing a chain: best fused vs. per-operator optima.

    ``certify``/``paranoid`` apply to both sides of the comparison: the
    per-operator optima and the fused winner are all independently
    validated (and, in paranoid mode, probed) through :mod:`repro.verify`.
    """

    ops = tuple(ops)
    buffer_elems = validate_buffer_elems(buffer_elems)
    if len(ops) < 2:
        raise FusionError("fusion decision needs at least two operators")
    unfused = tuple(
        optimize_intra(
            op, buffer_elems, convention, certify=certify, paranoid=paranoid
        )
        for op in ops
    )
    fused = optimize_fused(
        ops, buffer_elems, include_cross, convention,
        medium=medium, register_elems=register_elems,
        certify=certify, paranoid=paranoid,
    )
    predicted = all(
        principle4_same_nra(a, b, buffer_elems, convention)
        for a, b in zip(ops, ops[1:])
    )
    return FusionDecision(
        ops=ops,
        fused=fused,
        unfused=unfused,
        predicted_profitable=predicted,
    )
