"""Intra-operator principle-based optimization (paper Sec. III-A).

:func:`optimize_intra` returns the communication-optimal dataflow for a
single operator and buffer size by evaluating the twelve closed-form NRA
candidates (:mod:`repro.core.nra`) through the shared access counter and
keeping the minimum.  :func:`one_shot_dataflow` follows the paper's regime
table literally (classify the buffer, then apply the matching principle
only); the two agree everywhere -- the regime table is exactly the statement
of *which* candidate wins where -- and the test suite asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..ir.operator import TensorOperator, validate_buffer_elems
from ..dataflow.cost import (
    MemoryAccessReport,
    PartialSumConvention,
    fits_buffer,
    memory_access,
)
from ..dataflow.spec import Dataflow, NRAClass
from .nra import (
    NRACandidate,
    UnsupportedOperatorError,
    all_candidates,
    is_mm_like,
    is_streaming,
    single_nra,
    streaming_dataflow,
    three_nra,
    two_nra,
)
from .regimes import BufferRegime, RegimeReport, classify_buffer


class InfeasibleError(ValueError):
    """Raised when no dataflow fits the buffer at all."""


@dataclass(frozen=True)
class IntraResult:
    """Outcome of intra-operator optimization for one operator."""

    operator: TensorOperator
    dataflow: Dataflow
    report: MemoryAccessReport
    regime: Optional[RegimeReport]
    label: str
    #: Attached by the certification layer (:mod:`repro.verify`) when the
    #: result was produced with ``certify=True``/``paranoid=True``; typed
    #: loosely to keep :mod:`repro.core` import-cycle-free.
    certificate: Optional[Any] = field(default=None, compare=False)

    @property
    def memory_access(self) -> int:
        """Total accesses including the operator's repetition count."""
        return self.report.total

    @property
    def nra_class(self) -> NRAClass:
        return self.report.nra_class

    @property
    def redundancy(self) -> float:
        return self.report.total / self.operator.ideal_memory_access()

    def describe(self) -> str:
        regime = self.regime.regime.value if self.regime else "-"
        return (
            f"{self.operator.name}: MA={self.memory_access} "
            f"({self.nra_class}, regime={regime}) "
            f"[{self.dataflow.describe(self.operator)}]"
        )


def _pick_best(
    operator: TensorOperator,
    candidates: List[NRACandidate],
    buffer_elems: int,
    convention: PartialSumConvention,
) -> Tuple[NRACandidate, MemoryAccessReport]:
    best: Optional[Tuple[NRACandidate, MemoryAccessReport]] = None
    for candidate in candidates:
        if not fits_buffer(operator, candidate.dataflow, buffer_elems):
            continue
        report = memory_access(operator, candidate.dataflow, convention)
        if best is None or report.total < best[1].total or (
            # Tie-break toward the higher realized NRA class so the chosen
            # label matches the regime narrative (several constructor
            # families can collapse to the same dataflow at boundaries).
            report.total == best[1].total
            and report.nra_class.value > best[1].nra_class.value
        ):
            best = (candidate, report)
    if best is None:
        raise InfeasibleError(
            f"no dataflow for {operator.name!r} fits a buffer of "
            f"{buffer_elems} elements"
        )
    return best


def optimize_intra(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
    certify: bool = False,
    paranoid: bool = False,
) -> IntraResult:
    """Principle-based optimal intra-operator dataflow.

    Parameters
    ----------
    operator:
        The operator to optimize (MM-like or streaming).
    buffer_elems:
        On-chip buffer capacity in elements.
    convention:
        Partial-sum accounting convention (see
        :class:`repro.dataflow.cost.PartialSumConvention`).
    certify:
        Independently validate the result through :mod:`repro.verify`
        (feasibility, cost audit, bound, regime) and attach the
        certificate; a failed check raises
        :class:`repro.verify.CertificationError`.
    paranoid:
        Implies ``certify`` and additionally cross-checks against a
        budgeted branch-and-bound probe; if the probe certifies a better
        dataflow, that dataflow is returned instead (self-healing
        fallback) and the discrepancy is recorded.
    """

    buffer_elems = validate_buffer_elems(buffer_elems)
    if is_streaming(operator):
        dataflow = streaming_dataflow(operator)
        result = IntraResult(
            operator=operator,
            dataflow=dataflow,
            report=memory_access(operator, dataflow, convention),
            regime=None,
            label="streaming",
        )
        return _maybe_certify_intra(
            result, buffer_elems, convention, certify, paranoid
        )
    if not is_mm_like(operator):
        raise UnsupportedOperatorError(
            f"operator {operator.name!r} is neither MM-like nor streaming"
        )
    candidates = all_candidates(operator, buffer_elems)
    best, report = _pick_best(operator, candidates, buffer_elems, convention)
    result = IntraResult(
        operator=operator,
        dataflow=best.dataflow,
        report=report,
        regime=classify_buffer(operator, buffer_elems),
        label=best.label,
    )
    return _maybe_certify_intra(
        result, buffer_elems, convention, certify, paranoid
    )


def _maybe_certify_intra(
    result: IntraResult,
    buffer_elems: int,
    convention: PartialSumConvention,
    certify: bool,
    paranoid: bool,
) -> IntraResult:
    if not (certify or paranoid):
        return result
    # Imported lazily: repro.verify depends on repro.core, so a module-level
    # import here would be circular.
    from ..verify import CertificationError, certify_intra

    certified = certify_intra(
        result.operator,
        buffer_elems,
        result=result,
        convention=convention,
        paranoid=paranoid,
    )
    if not certified.certificate.ok:
        raise CertificationError(
            f"certification failed for {result.operator.name!r}: "
            + "; ".join(certified.certificate.failure_summaries()),
            certificate=certified.certificate,
        )
    return certified.result


def one_shot_dataflow(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> IntraResult:
    """The paper's literal regime-table procedure (Sec. III-A4).

    Classify the buffer, then construct only the candidate(s) the matching
    principle prescribes:

    * tiny   -> Single-NRA with the smallest tensor stationary;
    * small  -> the better of that Single-NRA and the best Two-NRA untiling
      the smallest dimension;
    * medium -> Two-NRA untiling the smallest dimension;
    * large  -> Three-NRA keeping the smallest tensor resident.

    When the prescribed candidate is infeasible at a regime boundary (e.g. a
    Three-NRA whose streaming strips overflow just above ``Tensor_min``),
    the next-lower class is used, mirroring the paper's "shift point" bands.
    """

    if is_streaming(operator):
        return optimize_intra(operator, buffer_elems, convention)
    if not is_mm_like(operator):
        raise UnsupportedOperatorError(
            f"operator {operator.name!r} is neither MM-like nor streaming"
        )
    regime = classify_buffer(operator, buffer_elems)
    smallest_tensor = operator.smallest_tensor.name
    smallest_dim = operator.smallest_dim
    candidates: List[NRACandidate] = []

    def add(candidate: Optional[NRACandidate]) -> None:
        if candidate is not None:
            candidates.append(candidate)

    def add_two_nra_for(dim: str) -> None:
        for maximized in operator.dim_names:
            if maximized != dim:
                add(two_nra(operator, dim, maximized, buffer_elems))

    if regime.regime is BufferRegime.TINY:
        add(single_nra(operator, smallest_tensor, buffer_elems))
    elif regime.regime is BufferRegime.SMALL:
        add(single_nra(operator, smallest_tensor, buffer_elems))
        add_two_nra_for(smallest_dim)
    elif regime.regime is BufferRegime.MEDIUM:
        add_two_nra_for(smallest_dim)
        if not candidates:
            add(single_nra(operator, smallest_tensor, buffer_elems))
    else:
        add(three_nra(operator, smallest_tensor, buffer_elems))
        if not candidates:
            add_two_nra_for(smallest_dim)

    if not candidates:
        # Fall back to the full candidate set near infeasibility boundaries.
        candidates = all_candidates(operator, buffer_elems)
    best, report = _pick_best(operator, candidates, buffer_elems, convention)
    return IntraResult(
        operator=operator,
        dataflow=best.dataflow,
        report=report,
        regime=regime,
        label=best.label,
    )
