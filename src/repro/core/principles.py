"""The four dataflow-optimization principles (paper Sec. III).

Each principle is exposed both as *documentation* (a :class:`Principle`
record with its tiling and scheduling rules and the concrete recommendation
for a given operator) and as *machinery* (the closed-form constructors in
:mod:`repro.core.nra` and the fusion profitability predicate
:func:`principle4_same_nra`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.operator import TensorOperator
from ..dataflow.cost import PartialSumConvention
from ..dataflow.spec import NRAClass
from .intra import optimize_intra
from .nra import is_mm_like
from .regimes import classify_buffer


@dataclass(frozen=True)
class Principle:
    """One of the paper's four principles, with concrete recommendations."""

    number: int
    title: str
    tiling_rule: str
    scheduling_rule: str
    recommendation: str


def principle1(operator: TensorOperator) -> Principle:
    """Single-NRA: stationary-tensor selection and tiling (paper Principle 1)."""
    stationary = operator.smallest_tensor
    dims = ", ".join(operator.dims_of(stationary.name))
    return Principle(
        number=1,
        title="Single-tensor non-redundant access",
        tiling_rule=(
            "maximize tile size for stationary tensor dimensions, minimize "
            "for non-stationary ones"
        ),
        scheduling_rule="choose the smallest tensor to be stationary",
        recommendation=(
            f"keep {stationary.name} stationary; maximize tiles of ({dims}); "
            "tile the remaining dimension at 1"
        ),
    )


def principle2(operator: TensorOperator) -> Principle:
    """Two-NRA: untiled-dimension selection and tiling (paper Principle 2)."""
    smallest = operator.smallest_dim
    return Principle(
        number=2,
        title="Two-tensor non-redundant access",
        tiling_rule=(
            "maximize the tile size for the dimension not in the redundant "
            "access tensor, minimize for others"
        ),
        scheduling_rule="untile/unroll the smallest dimension",
        recommendation=(
            f"leave dimension {smallest} (extent "
            f"{operator.dims[smallest]}) untiled; maximize the tile of a "
            "dimension outside the redundant tensor"
        ),
    )


def principle3(operator: TensorOperator) -> Principle:
    """Three-NRA: resident-tensor selection (paper Principle 3)."""
    resident = operator.smallest_tensor
    return Principle(
        number=3,
        title="Three-tensor non-redundant access",
        tiling_rule="do not care",
        scheduling_rule="untile/unroll the smallest tensor",
        recommendation=(
            f"keep {resident.name} ({resident.size} elements) entirely "
            "on-chip; every tensor is then accessed exactly once"
        ),
    )


def principle4() -> Principle:
    """Fusion profitability (paper Principle 4)."""
    return Principle(
        number=4,
        title="Profitable operator fusion",
        tiling_rule="share the intermediate tensor's tiling across operators",
        scheduling_rule="only fuse tensor operators with the same NRA dataflow",
        recommendation=(
            "fuse adjacent operators only when their optimal intra-operator "
            "dataflows fall in the same NRA class; cross-NRA fusion trades "
            "dominant redundant accesses for the intermediate's traffic and "
            "loses"
        ),
    )


ALL_PRINCIPLES = (principle1, principle2, principle3)


def optimal_nra_class(
    operator: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> Optional[NRAClass]:
    """NRA class of the operator's optimal intra dataflow.

    Streaming operators (elementwise/softmax) return ``None``: they are
    NRA-neutral and fuse freely with either neighbor.
    """

    if not is_mm_like(operator):
        return None
    return optimize_intra(operator, buffer_elems, convention).nra_class


def principle4_same_nra(
    producer: TensorOperator,
    consumer: TensorOperator,
    buffer_elems: int,
    convention: PartialSumConvention = PartialSumConvention.SINGLE,
) -> bool:
    """Principle 4 prediction: is fusing this pair profitable?

    True when both operators' optimal intra-operator dataflows share the
    same NRA class (streaming operators are neutral and never block fusion).
    """

    nra_a = optimal_nra_class(producer, buffer_elems, convention)
    nra_b = optimal_nra_class(consumer, buffer_elems, convention)
    if nra_a is None or nra_b is None:
        return True
    return nra_a == nra_b


def regime_summary(operator: TensorOperator, buffer_elems: int) -> str:
    """One-line report combining regime classification and Principles 1-3."""
    report = classify_buffer(operator, buffer_elems)
    return (
        f"{operator.name}: BS={buffer_elems} elements -> {report.regime} "
        f"(Dmin={report.d_min}, Tensor_min={report.tensor_min}); candidates: "
        + ", ".join(str(nra) for nra in report.candidates)
    )
