"""Human-readable walkthroughs of the principle-based decisions.

The paper's second motivation for principles over search is *insight*:
"searching-based optimization sheds limited insight on architecture
innovations."  :func:`explain_intra` and :func:`explain_fusion` make that
insight explicit -- given an operator and a buffer, they narrate the
regime classification, the principle applied, the resulting tiles and the
per-tensor consequences, in the order a designer would reason.

Used by ``python -m repro explain``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.operator import TensorOperator
from ..dataflow.spec import NRAClass
from .fusion import decide_fusion
from .intra import optimize_intra
from .regimes import BufferRegime, classify_buffer


def explain_intra(operator: TensorOperator, buffer_elems: int) -> str:
    """Narrate the intra-operator optimization for one operator."""
    lines: List[str] = []
    dims = ", ".join(f"{d}={e}" for d, e in operator.dims.items())
    lines.append(f"Operator {operator.name}: {dims}")
    tensors = ", ".join(
        f"{t.name} ({t.size} elems)" for t in operator.tensors
    )
    lines.append(f"Tensors: {tensors}")
    lines.append(f"Infinite-buffer ideal: {operator.ideal_memory_access()} accesses")
    lines.append("")

    report = classify_buffer(operator, buffer_elems)
    quarter = report.d_min ** 2 // 4
    half = report.d_min ** 2 // 2
    lines.append(
        f"Step 1 - classify the buffer ({buffer_elems} elements):"
    )
    lines.append(
        f"  smallest dimension Dmin = {report.d_min}; "
        f"Dmin^2/4 = {quarter}, Dmin^2/2 = {half}; "
        f"smallest tensor = {report.tensor_min} elements"
    )
    regime_story = {
        BufferRegime.TINY: (
            "tiny (BS <= Dmin^2/4): only one tensor can avoid redundant "
            "access -> Single-NRA, Principle 1"
        ),
        BufferRegime.SMALL: (
            "small (Dmin^2/4 < BS <= Dmin^2/2): inside the shift band -> "
            "compare Single-NRA (Principle 1) and Two-NRA (Principle 2)"
        ),
        BufferRegime.MEDIUM: (
            "medium (Dmin^2/2 < BS <= Tensor_min): untiling the smallest "
            "dimension pays -> Two-NRA, Principle 2"
        ),
        BufferRegime.LARGE: (
            "large (BS > Tensor_min): the smallest tensor fits entirely -> "
            "Three-NRA, Principle 3, ideal memory access"
        ),
    }
    lines.append(f"  regime: {regime_story[report.regime]}")
    lines.append("")

    result = optimize_intra(operator, buffer_elems)
    tiling = result.dataflow.tiling.for_operator(operator)
    lines.append(f"Step 2 - the one-shot dataflow ({result.label}):")
    lines.append(
        "  tiles: "
        + ", ".join(f"T_{d}={tiling[d]}" for d in operator.dim_names)
        + f"; loop order ({', '.join(result.dataflow.schedule.order)})"
    )
    untiled = [d for d in operator.dim_names if tiling[d] == operator.dims[d]]
    if untiled:
        lines.append(
            f"  untiled dims: {', '.join(untiled)} (their loops vanish from "
            "every redundancy multiplier)"
        )
    stationary = result.dataflow.stationary_tensor_name(operator)
    if stationary:
        lines.append(f"  stationary tensor: {stationary}")
    lines.append("")

    lines.append("Step 3 - the consequences, per tensor:")
    for tensor in operator.tensors:
        entry = result.report.per_tensor[tensor.name]
        if entry.non_redundant:
            lines.append(
                f"  {tensor.name}: accessed once ({entry.accesses} elements)"
            )
        else:
            lines.append(
                f"  {tensor.name}: re-accessed x{entry.multiplier} "
                f"({entry.accesses} elements) - the redundant tensor"
            )
    lines.append(
        f"Total: {result.memory_access} accesses = "
        f"{result.redundancy:.2f}x the ideal "
        f"({str(result.nra_class)})"
    )
    return "\n".join(lines)


def explain_fusion(
    ops: Sequence[TensorOperator], buffer_elems: int
) -> str:
    """Narrate the fusion decision for a producer/consumer chain."""
    decision = decide_fusion(list(ops), buffer_elems, include_cross=True)
    lines: List[str] = []
    names = " -> ".join(op.name for op in ops)
    lines.append(f"Chain {names} at {buffer_elems} buffer elements")
    lines.append("")
    lines.append("Unfused optima (Principles 1-3 per operator):")
    for result in decision.unfused:
        lines.append(f"  {result.describe()}")
    lines.append(f"  total: {decision.unfused_memory_access} accesses")
    lines.append("")
    if decision.fused is None:
        lines.append("No fused dataflow fits; fusion is infeasible here.")
        return "\n".join(lines)
    lines.append("Best fused dataflow (Fig. 4 pattern space):")
    lines.append(f"  {decision.fused.describe()}")
    classes = " / ".join(str(c) for c in decision.fused.per_op_nra)
    lines.append(f"  per-operator classes inside the nest: {classes}")
    intermediates = ", ".join(
        t.name for t in decision.fused.chain.intermediates()
    )
    lines.append(f"  intermediates kept on-chip: {intermediates}")
    lines.append("")
    verdict = "profitable" if decision.profitable else "not profitable"
    prediction = "same" if decision.predicted_profitable else "different"
    lines.append(
        f"Principle 4: the operators' unfused classes are {prediction}; "
        f"measured, fusion is {verdict}"
        + (f" (saves {decision.saving:.1%})" if decision.profitable else "")
    )
    return "\n".join(lines)
