"""Unit tests for repro.ir.graph."""

import pytest

from repro.ir import GraphError, OperatorGraph, matmul, rowwise_softmax


def chain_graph():
    """mm1 -> mm2 -> mm3 linear chain."""
    graph = OperatorGraph("chain")
    mm1 = graph.add(matmul("mm1", 4, 5, 6))
    mm2 = graph.add(matmul("mm2", 4, 6, 7, a=mm1.output))
    mm3 = graph.add(matmul("mm3", 4, 7, 8, a=mm2.output))
    return graph, (mm1, mm2, mm3)


class TestGraphConstruction:
    def test_add_and_len(self):
        graph, _ = chain_graph()
        assert len(graph) == 3

    def test_duplicate_name_rejected(self):
        graph = OperatorGraph()
        graph.add(matmul("mm", 4, 5, 6))
        with pytest.raises(GraphError, match="duplicate"):
            graph.add(matmul("mm", 4, 5, 6))

    def test_duplicate_producer_rejected(self):
        graph = OperatorGraph()
        mm1 = graph.add(matmul("mm1", 4, 5, 6))
        bad = matmul("mm2", 4, 5, 6, c=mm1.output)
        with pytest.raises(GraphError, match="produced"):
            graph.add(bad)

    def test_operator_lookup(self):
        graph, ops = chain_graph()
        assert graph.operator("mm2") is ops[1]
        with pytest.raises(GraphError):
            graph.operator("missing")

    def test_contains(self):
        graph, _ = chain_graph()
        assert "mm1" in graph
        assert "zzz" not in graph


class TestGraphStructure:
    def test_producer_consumer(self):
        graph, ops = chain_graph()
        mm1, mm2, _ = ops
        assert graph.producer(mm1.output.name) is mm1
        assert graph.consumers(mm1.output.name) == (mm2,)
        assert graph.producer("mm1.A") is None

    def test_predecessors_successors(self):
        graph, ops = chain_graph()
        mm1, mm2, mm3 = ops
        assert graph.predecessors(mm2) == (mm1,)
        assert graph.successors(mm2) == (mm3,)
        assert graph.predecessors(mm1) == ()
        assert graph.successors(mm3) == ()

    def test_intermediates(self):
        graph, ops = chain_graph()
        names = {t.name for t in graph.intermediate_tensors()}
        assert names == {"mm1.C", "mm2.C"}

    def test_external_tensors(self):
        graph, _ = chain_graph()
        names = {t.name for t in graph.external_tensors()}
        assert names == {"mm1.A", "mm1.B", "mm2.B", "mm3.B", "mm3.C"}

    def test_topological_order(self):
        graph, ops = chain_graph()
        order = [op.name for op in graph.topological_order()]
        assert order.index("mm1") < order.index("mm2") < order.index("mm3")

    def test_topological_covers_all(self):
        graph, _ = chain_graph()
        assert len(graph.topological_order()) == len(graph)


class TestChains:
    def test_linear_chain_detected(self):
        graph, ops = chain_graph()
        chains = graph.chains()
        assert len(chains) == 1
        assert [op.name for op in chains[0]] == ["mm1", "mm2", "mm3"]

    def test_chains_partition_operators(self):
        graph, _ = chain_graph()
        graph.add(matmul("lonely", 3, 3, 3))
        names = [op.name for chain in graph.chains() for op in chain]
        assert sorted(names) == sorted(op.name for op in graph)

    def test_fanout_breaks_chain(self):
        graph = OperatorGraph()
        mm1 = graph.add(matmul("mm1", 4, 5, 6))
        graph.add(matmul("mm2", 4, 6, 7, a=mm1.output))
        graph.add(matmul("mm3", 4, 6, 8, a=mm1.output))
        chains = {tuple(op.name for op in chain) for chain in graph.chains()}
        assert ("mm1",) in chains  # two consumers -> mm1 alone

    def test_count_mismatch_breaks_chain(self):
        graph = OperatorGraph()
        mm1 = graph.add(matmul("mm1", 4, 5, 6, count=2))
        graph.add(matmul("mm2", 4, 6, 7, a=mm1.output, count=3))
        chains = {tuple(op.name for op in chain) for chain in graph.chains()}
        assert ("mm1",) in chains and ("mm2",) in chains

    def test_softmax_in_chain(self):
        graph = OperatorGraph()
        mm1 = graph.add(matmul("mm1", 4, 5, 6))
        sm = graph.add(rowwise_softmax("sm", mm1.output))
        graph.add(matmul("mm2", 4, 6, 7, a=sm.output))
        chains = graph.chains()
        assert len(chains) == 1
        assert [op.name for op in chains[0]] == ["mm1", "sm", "mm2"]

    def test_join_starts_its_own_chain(self):
        # Both in-links are single-consumer, but the join draws produced
        # inputs from TWO producers: the detector refuses to pick a side,
        # so the join starts its own chain (see chains() docstring).
        graph = OperatorGraph()
        a = graph.add(matmul("a", 4, 4, 4))
        b = graph.add(matmul("b", 4, 4, 4))
        graph.add(matmul("join", 4, 4, 4, a=a.output, b=b.output))
        chains = {tuple(op.name for op in chain) for chain in graph.chains()}
        assert chains == {("a",), ("b",), ("join",)}

    def test_diamond_partitions_every_op_once(self):
        graph = OperatorGraph()
        x = graph.add(matmul("x", 4, 4, 4))
        c1 = graph.add(matmul("c1", 4, 4, 4, a=x.output))
        c2 = graph.add(matmul("c2", 4, 4, 6, a=x.output))
        graph.add(matmul("j", 4, 4, 6, a=c1.output, b=c2.output))
        names = sorted(
            op.name for chain in graph.chains() for op in chain
        )
        assert names == sorted(op.name for op in graph)
        chains = {tuple(op.name for op in chain) for chain in graph.chains()}
        # fan-out ends x; the join refuses both c1 and c2 as chain mates.
        assert chains == {("x",), ("c1",), ("c2",), ("j",)}

    def test_chain_continues_past_join_output(self):
        # Downstream of a join, single-consumer links chain normally: the
        # join heads a chain that extends through its own consumers.
        graph = OperatorGraph()
        a = graph.add(matmul("a", 4, 4, 4))
        b = graph.add(matmul("b", 4, 4, 4))
        j = graph.add(matmul("join", 4, 4, 4, a=a.output, b=b.output))
        graph.add(rowwise_softmax("sm", j.output))
        chains = {tuple(op.name for op in chain) for chain in graph.chains()}
        assert ("join", "sm") in chains

    def test_chains_are_deterministic(self):
        graph = OperatorGraph()
        x = graph.add(matmul("x", 4, 4, 4))
        graph.add(matmul("c1", 4, 4, 4, a=x.output))
        graph.add(matmul("c2", 4, 4, 6, a=x.output))
        first = [
            tuple(op.name for op in chain) for chain in graph.chains()
        ]
        second = [
            tuple(op.name for op in chain) for chain in graph.chains()
        ]
        assert first == second


class TestGraphAggregates:
    def test_macs_sum(self):
        graph, ops = chain_graph()
        assert graph.macs == sum(op.macs for op in ops)

    def test_ideal_memory_access_excludes_intermediates(self):
        graph, ops = chain_graph()
        mm1, mm2, mm3 = ops
        expected = (
            mm1.inputs[0].size
            + mm1.inputs[1].size
            + mm2.inputs[1].size
            + mm3.inputs[1].size
            + mm3.output.size
        )
        assert graph.ideal_memory_access() == expected

    def test_ideal_memory_access_scales_count(self):
        graph = OperatorGraph()
        graph.add(matmul("mm", 4, 5, 6, count=5))
        assert graph.ideal_memory_access() == 5 * (20 + 30 + 24)


class TestCycles:
    def test_cyclic_graph_detected(self):
        """A handcrafted producer cycle is caught by topological_order."""
        from repro.ir import Tensor, TensorOperator

        t1 = Tensor("c1", (4, 4))
        t2 = Tensor("c2", (4, 4))
        x = Tensor("x", (4, 4))
        op1 = TensorOperator(
            name="op1",
            dims={"M": 4, "L": 4},
            inputs=(t2, x),
            output=t1,
            indexing={"c2": ("M", "L"), "x": ("M", "L"), "c1": ("M", "L")},
        )
        op2 = TensorOperator(
            name="op2",
            dims={"M": 4, "L": 4},
            inputs=(t1,),
            output=t2,
            indexing={"c1": ("M", "L"), "c2": ("M", "L")},
        )
        graph = OperatorGraph("cyclic")
        graph.add(op1)
        graph.add(op2)
        with pytest.raises(GraphError, match="cycle"):
            graph.topological_order()
