"""Tests for the two-level hierarchy analysis and the 2N bound (Sec. IV-B)."""

import pytest

from repro.core import (
    classify_buffer,
    max_useful_untiled_dim,
    optimize_two_level,
    untiling_is_optimal_at_registers,
)
from repro.dataflow import NRAClass
from repro.ir import matmul


class TestTwoLevel:
    def test_traffic_hierarchy(self):
        """Buffer<->register traffic exceeds DRAM<->buffer traffic (reuse
        shrinks going up the hierarchy)."""
        op = matmul("mm", 1024, 768, 768)
        result = optimize_two_level(op, 512 * 1024, 128 * 128)
        assert result.buffer_traffic >= result.dram_traffic

    def test_dram_traffic_matches_single_level(self):
        from repro.core import optimize_intra

        op = matmul("mm", 1024, 768, 768)
        result = optimize_two_level(op, 512 * 1024, 128 * 128)
        assert result.dram_traffic == optimize_intra(op, 512 * 1024).memory_access

    def test_inner_operator_is_the_buffer_tile(self):
        op = matmul("mm", 1024, 768, 768)
        result = optimize_two_level(op, 512 * 1024, 128 * 128)
        outer_tiling = result.outer.dataflow.tiling.for_operator(op)
        assert result.inner.operator.dims == {
            "M": outer_tiling["M"],
            "K": outer_tiling["K"],
            "L": outer_tiling["L"],
        }

    def test_executions_cover_iteration_space(self):
        op = matmul("mm", 512, 384, 448)
        result = optimize_two_level(op, 64 * 1024, 64 * 64)
        sub_space = result.inner.operator.iteration_space
        assert result.inner_executions * sub_space >= op.iteration_space

    def test_count_scales_executions(self):
        op1 = matmul("mm", 256, 192, 224)
        op4 = matmul("mm", 256, 192, 224, count=4)
        r1 = optimize_two_level(op1, 32 * 1024, 64 * 64)
        r4 = optimize_two_level(op4, 32 * 1024, 64 * 64)
        assert r4.inner_executions == 4 * r1.inner_executions

    def test_describe(self):
        op = matmul("mm", 256, 192, 224)
        text = optimize_two_level(op, 32 * 1024, 64 * 64).describe()
        assert "DRAM traffic" in text and "buffer traffic" in text

    def test_non_mm_rejected(self):
        from repro.ir import Tensor, rowwise_softmax

        op = rowwise_softmax("sm", Tensor("x", (8, 8)))
        with pytest.raises(ValueError):
            optimize_two_level(op, 1000, 100)


class TestTwoNBound:
    def test_max_useful_untiled_dim(self):
        assert max_useful_untiled_dim(128) == 256
        with pytest.raises(ValueError):
            max_useful_untiled_dim(0)

    def test_untiling_predicate(self):
        assert untiling_is_optimal_at_registers(255, 128)
        assert not untiling_is_optimal_at_registers(256, 128)

    def test_bound_matches_regime_table(self):
        """Sec. IV-B's derivation: with BS = N^2, the Two-NRA regimes
        (BS > Dmin^2/4) are reachable exactly when Dmin < 2N."""
        n = 64
        registers = n * n
        # Dmin just below 2N: register-level regime allows untiling.
        op_small = matmul("t", 512, 2 * n - 1, 512)
        report = classify_buffer(op_small, registers)
        assert report.regime.value in ("small", "medium", "large")
        # Dmin at 2N: stuck in the tiny regime (Single-NRA, no untiling).
        op_big = matmul("t", 512, 2 * n, 512)
        report_big = classify_buffer(op_big, registers)
        assert report_big.regime.value == "tiny"

    def test_register_level_dataflow_untiling_behavior(self):
        """The realized register-level dataflow obeys the 2N bound."""
        from repro.core import optimize_intra

        n = 64
        registers = n * n
        # Small head dim (64 < 2N): the optimal register dataflow untiles it.
        small = optimize_intra(matmul("t", 512, 64, 512), registers)
        assert small.nra_class in (NRAClass.TWO, NRAClass.THREE)
        # Large dims (>= 2N everywhere): Single-NRA only.
        large = optimize_intra(matmul("t", 512, 512, 512), registers)
        assert large.nra_class is NRAClass.SINGLE
