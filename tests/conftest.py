"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.ir import matmul

# ----------------------------------------------------------------------
# Hypothesis profiles: deterministic by default
# ----------------------------------------------------------------------
# Tier-1 must not flake.  The "ci" profile derandomizes example
# generation (examples derive from each test's structure, not a fresh
# RNG seed per run), so a hypothesis-heavy suite either always passes or
# always fails -- known gaps get pinned as explicit xfail regression
# tests instead of ambushing unrelated PRs.  Opt back into randomized
# exploration locally with HYPOTHESIS_PROFILE=explore to hunt new
# counterexamples.
settings.register_profile("ci", derandomize=True)
settings.register_profile("explore", derandomize=False)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def bert_op():
    """The paper's worked example: A(1024,768) x B(768,768) (Sec. III-A4)."""
    return matmul("bert", 1024, 768, 768)


@pytest.fixture
def small_op():
    """A small MM convenient for exhaustive ground truth."""
    return matmul("small", 24, 16, 20)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def mm_dims(min_dim: int = 2, max_dim: int = 96):
    """Random (M, K, L) triples."""
    dim = st.integers(min_value=min_dim, max_value=max_dim)
    return st.tuples(dim, dim, dim)


def mm_ops(min_dim: int = 2, max_dim: int = 96):
    """Random matmul operators."""
    return mm_dims(min_dim, max_dim).map(
        lambda dims: matmul("op", dims[0], dims[1], dims[2])
    )


def buffer_sizes(min_size: int = 8, max_size: int = 1 << 16):
    return st.integers(min_value=min_size, max_value=max_size)
