"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.ir import matmul


@pytest.fixture
def bert_op():
    """The paper's worked example: A(1024,768) x B(768,768) (Sec. III-A4)."""
    return matmul("bert", 1024, 768, 768)


@pytest.fixture
def small_op():
    """A small MM convenient for exhaustive ground truth."""
    return matmul("small", 24, 16, 20)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def mm_dims(min_dim: int = 2, max_dim: int = 96):
    """Random (M, K, L) triples."""
    dim = st.integers(min_value=min_dim, max_value=max_dim)
    return st.tuples(dim, dim, dim)


def mm_ops(min_dim: int = 2, max_dim: int = 96):
    """Random matmul operators."""
    return mm_dims(min_dim, max_dim).map(
        lambda dims: matmul("op", dims[0], dims[1], dims[2])
    )


def buffer_sizes(min_size: int = 8, max_size: int = 1 << 16):
    return st.integers(min_value=min_size, max_value=max_size)
