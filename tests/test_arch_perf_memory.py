"""Tests for the memory spec and the analytical performance model."""

import pytest

from repro.arch import (
    KIB,
    MIB,
    MemorySpec,
    PAPER_BUFFER_SWEEP_BYTES,
    PAPER_DEFAULT_MEMORY,
    PlatformPerf,
    SegmentPerf,
    fill_efficiency,
    matmul_segment_perf,
    spatial_efficiency,
    streaming_segment_perf,
)
from repro.dataflow import ArrayShape


class TestMemorySpec:
    def test_defaults_match_paper(self):
        assert PAPER_DEFAULT_MEMORY.buffer_bytes == 512 * KIB
        assert PAPER_DEFAULT_MEMORY.bandwidth_gbps == 1000.0

    def test_buffer_elems(self):
        assert MemorySpec(buffer_bytes=1024, dtype_bytes=2).buffer_elems == 512

    def test_bytes_per_cycle(self):
        spec = MemorySpec(bandwidth_gbps=1000.0, frequency_ghz=1.0)
        assert spec.bytes_per_cycle == 1000.0

    def test_with_buffer(self):
        spec = PAPER_DEFAULT_MEMORY.with_buffer(64 * KIB)
        assert spec.buffer_bytes == 64 * KIB
        assert spec.bandwidth_gbps == PAPER_DEFAULT_MEMORY.bandwidth_gbps

    def test_sweep_range(self):
        assert PAPER_BUFFER_SWEEP_BYTES[0] == 32 * KIB
        assert PAPER_BUFFER_SWEEP_BYTES[-1] == 32 * MIB

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySpec(buffer_bytes=0)
        with pytest.raises(ValueError):
            MemorySpec(dtype_bytes=0)
        with pytest.raises(ValueError):
            MemorySpec(bandwidth_gbps=0)


class TestSpatialAndFill:
    def test_spatial_efficiency_picks_best_shape(self):
        shapes = (ArrayShape(128, 128), ArrayShape(64, 256))
        shape, utilization = spatial_efficiency((64, 1024), shapes)
        assert utilization == 1.0
        assert (shape.rows, shape.cols) == (64, 256)

    def test_fill_efficiency(self):
        assert fill_efficiency(ArrayShape(128, 128), 768) == pytest.approx(
            768 / (768 + 256)
        )
        with pytest.raises(ValueError):
            fill_efficiency(ArrayShape(4, 4), 0)


class TestSegmentPerf:
    def make(self, macs=10**7, ma=10**5, dims=(128, 128), stream=512, **kw):
        return matmul_segment_perf(
            name="seg",
            macs=macs,
            ma_elems=ma,
            stationary_dims=dims,
            stream_len=stream,
            shapes=(ArrayShape(128, 128),),
            total_pes=128 * 128,
            memory=PAPER_DEFAULT_MEMORY,
            **kw,
        )

    def test_cycles_is_max_of_compute_memory(self):
        seg = self.make()
        assert seg.cycles == max(seg.compute_cycles, seg.memory_cycles)

    def test_memory_bound_detection(self):
        bound = self.make(macs=10**4, ma=10**8)
        assert bound.memory_bound
        compute = self.make(macs=10**9, ma=10)
        assert not compute.memory_bound

    def test_small_tile_halves_utilization(self):
        full = self.make(dims=(128, 128))
        half = self.make(dims=(64, 128))
        assert half.spatial_utilization == pytest.approx(0.5)
        assert half.compute_cycles > full.compute_cycles

    def test_overlap_fill_cheaper_than_serialized(self):
        overlapped = self.make(stream=32, overlap_fill=True)
        serialized = self.make(stream=32, overlap_fill=False)
        assert overlapped.compute_cycles < serialized.compute_cycles

    def test_streaming_segment(self):
        seg = streaming_segment_perf(
            name="softmax",
            points=10**6,
            ma_elems=2 * 10**6,
            total_pes=128 * 128,
            memory=PAPER_DEFAULT_MEMORY,
        )
        assert seg.memory_bound
        assert seg.array_shape is None


class TestPlatformPerf:
    def make_platform(self, cycles_scale=1.0):
        segments = tuple(
            SegmentPerf(
                name=f"s{i}",
                macs=10**6,
                ma_elems=10**4,
                compute_cycles=1000.0 * cycles_scale,
                memory_cycles=500.0,
                spatial_utilization=1.0,
                array_shape=None,
            )
            for i in range(3)
        )
        return PlatformPerf(
            platform="X", workload="w", segments=segments, total_pes=1000
        )

    def test_totals(self):
        perf = self.make_platform()
        assert perf.total_macs == 3 * 10**6
        assert perf.total_memory_access == 3 * 10**4
        assert perf.total_cycles == 3000.0

    def test_utilization(self):
        perf = self.make_platform()
        assert perf.utilization == pytest.approx(3 * 10**6 / (1000 * 3000.0))

    def test_speedup(self):
        fast = self.make_platform(1.0)
        slow = self.make_platform(2.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_requires_same_workload(self):
        fast = self.make_platform()
        other = PlatformPerf(
            platform="Y",
            workload="w",
            segments=fast.segments[:2],
            total_pes=1000,
        )
        with pytest.raises(ValueError, match="identical workloads"):
            fast.speedup_over(other)
