"""Unit tests for repro.dataflow.tiling."""

import pytest
from hypothesis import given, strategies as st

from conftest import mm_ops
from repro.dataflow import UNTILED, Tiling, TilingError, full_tiling, unit_tiling
from repro.ir import matmul


class TestTilingResolution:
    def test_untiled_sentinel_resolves_to_extent(self):
        op = matmul("mm", 4, 5, 6)
        tiling = Tiling({"M": UNTILED, "K": 2, "L": 3}).for_operator(op)
        assert tiling["M"] == 4

    def test_missing_dim_rejected(self):
        op = matmul("mm", 4, 5, 6)
        with pytest.raises(TilingError, match="missing"):
            Tiling({"M": 2, "K": 2}).for_operator(op)

    def test_extra_dim_rejected(self):
        op = matmul("mm", 4, 5, 6)
        with pytest.raises(TilingError, match="unknown"):
            Tiling({"M": 2, "K": 2, "L": 2, "Z": 1}).for_operator(op)

    def test_oversized_tile_rejected(self):
        op = matmul("mm", 4, 5, 6)
        with pytest.raises(TilingError, match="out of range"):
            Tiling({"M": 9, "K": 2, "L": 2}).for_operator(op)

    def test_zero_tile_rejected(self):
        op = matmul("mm", 4, 5, 6)
        with pytest.raises(TilingError, match="out of range"):
            Tiling({"M": 0, "K": 2, "L": 2}).for_operator(op)

    def test_untiled_dims_query(self):
        op = matmul("mm", 4, 5, 6)
        tiling = Tiling({"M": 4, "K": 2, "L": UNTILED})
        assert tiling.untiled_dims(op.dims) == ("M", "L")


class TestFootprints:
    def test_paper_eq2_footprint(self):
        """Eq. 2: T_M*T_K + T_K*T_L + T_M*T_L."""
        op = matmul("mm", 100, 100, 100)
        tiling = Tiling({"M": 10, "K": 5, "L": 7})
        assert tiling.buffer_footprint(op) == 10 * 5 + 5 * 7 + 10 * 7

    def test_tile_footprint_per_tensor(self):
        op = matmul("mm", 100, 100, 100)
        tiling = Tiling({"M": 10, "K": 5, "L": 7})
        assert tiling.tile_footprint(op, "mm.A") == 50
        assert tiling.tile_footprint(op, "mm.B") == 35
        assert tiling.tile_footprint(op, "mm.C") == 70

    def test_full_tiling_footprint_is_total_size(self):
        op = matmul("mm", 4, 5, 6)
        assert full_tiling(op).buffer_footprint(op) == 20 + 30 + 24

    def test_unit_tiling_footprint(self):
        op = matmul("mm", 4, 5, 6)
        assert unit_tiling(op).buffer_footprint(op) == 3

    @given(mm_ops(max_dim=32), st.data())
    def test_footprint_monotone_in_tiles(self, op, data):
        tiles_a = {
            dim: data.draw(st.integers(1, extent), label=dim)
            for dim, extent in op.dims.items()
        }
        tiles_b = {
            dim: data.draw(st.integers(tiles_a[dim], extent), label=f"{dim}b")
            for dim, extent in op.dims.items()
        }
        assert Tiling(tiles_a).buffer_footprint(op) <= Tiling(
            tiles_b
        ).buffer_footprint(op)

    @given(mm_ops(max_dim=32))
    def test_footprint_bounded_by_tensor_sizes(self, op):
        assert full_tiling(op).buffer_footprint(op) == sum(
            t.size for t in op.tensors
        )
