"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(["optimize", "64", "32", "48"])
        assert (args.m, args.k, args.l) == (64, 32, 48)
        assert args.buffer_kb == 512

    def test_buffer_override(self):
        args = build_parser().parse_args(
            ["optimize", "64", "32", "48", "--buffer-kb", "64"]
        )
        assert args.buffer_kb == 64

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_optimize(self, capsys):
        assert main(["optimize", "1024", "768", "768"]) == 0
        out = capsys.readouterr().out
        assert "Two-NRA" in out

    def test_fuse(self, capsys):
        assert main(["fuse", "64", "32", "48", "40", "--buffer-kb", "8"]) == 0
        out = capsys.readouterr().out
        assert "profitable" in out

    def test_fuse_with_cross(self, capsys):
        assert main(["fuse", "64", "32", "48", "40", "--cross"]) == 0

    def test_plan(self, capsys):
        assert main(["plan", "Blenderbot", "--buffer-kb", "256"]) == 0
        out = capsys.readouterr().out
        assert "fused[" in out

    def test_plan_unknown_model(self):
        with pytest.raises(KeyError):
            main(["plan", "NotAModel"])

    def test_compare(self, capsys):
        assert main(["compare", "Blenderbot"]) == 0
        out = capsys.readouterr().out
        assert "FuseCU" in out and "speedup" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out

    def test_fig12(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
