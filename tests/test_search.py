"""Tests for the searching-based DSE baselines (repro.search)."""

import pytest

from repro.ir import matmul
from repro.search import (
    GASettings,
    exhaustive_fused_search,
    exhaustive_search,
    genetic_fused_search,
    genetic_search,
    power_of_two_tiles,
    space_size,
    tile_grid,
)


class TestSpace:
    def test_power_of_two_tiles(self):
        assert power_of_two_tiles(8) == (1, 2, 4, 8)
        assert power_of_two_tiles(10) == (1, 2, 4, 8, 10)
        assert power_of_two_tiles(1) == (1,)

    def test_power_of_two_invalid(self):
        with pytest.raises(ValueError):
            power_of_two_tiles(0)

    def test_tile_grid_defaults(self):
        op = matmul("mm", 8, 10, 4)
        grid = tile_grid(op)
        assert grid["M"] == (1, 2, 4, 8)
        assert grid["K"] == (1, 2, 4, 8, 10)

    def test_tile_grid_custom(self):
        op = matmul("mm", 8, 10, 4)
        grid = tile_grid(op, {"M": [1, 8]})
        assert grid["M"] == (1, 8)

    def test_tile_grid_validates_range(self):
        op = matmul("mm", 8, 10, 4)
        with pytest.raises(ValueError):
            tile_grid(op, {"M": [9]})

    def test_space_size(self):
        op = matmul("mm", 8, 8, 8)
        grid = tile_grid(op)
        assert space_size(op, grid) == 6 * 4 ** 3


class TestExhaustive:
    def test_finds_global_grid_optimum(self):
        """Cross-check against a literal min over the grid."""
        import itertools

        from repro.dataflow import Dataflow, Schedule, Tiling, memory_access
        from repro.dataflow import all_schedules

        op = matmul("mm", 8, 8, 8)
        budget = 40
        result = exhaustive_search(op, budget)
        best = None
        grid = tile_grid(op)
        for tiles in itertools.product(*(grid[d] for d in op.dim_names)):
            tiling = Tiling(dict(zip(op.dim_names, tiles)))
            if tiling.buffer_footprint(op) > budget:
                continue
            for schedule in all_schedules(op):
                total = memory_access(op, Dataflow(tiling, schedule)).total
                best = total if best is None else min(best, total)
        assert result.memory_access == best

    def test_respects_buffer(self):
        op = matmul("mm", 16, 16, 16)
        result = exhaustive_search(op, 50)
        assert result.dataflow.buffer_footprint(op) <= 50

    def test_infeasible_returns_none(self):
        op = matmul("mm", 16, 16, 16)
        assert exhaustive_search(op, 2) is None

    def test_counts_evaluations(self):
        op = matmul("mm", 8, 8, 8)
        result = exhaustive_search(op, 1000)
        assert result.evaluations > 0


class TestGenetic:
    def test_deterministic_for_seed(self):
        op = matmul("mm", 32, 24, 28)
        settings = GASettings(population=20, generations=10, seed=7)
        a = genetic_search(op, 300, settings)
        b = genetic_search(op, 300, settings)
        assert a.memory_access == b.memory_access

    def test_feasible_result(self):
        op = matmul("mm", 32, 24, 28)
        result = genetic_search(op, 300, GASettings(population=20, generations=10))
        assert result.dataflow.buffer_footprint(op) <= 300

    def test_improves_over_generations(self):
        op = matmul("mm", 64, 48, 56)
        result = genetic_search(
            op, 500, GASettings(population=24, generations=25, seed=3)
        )
        assert result.history[-1] <= result.history[0]

    def test_close_to_exhaustive(self):
        op = matmul("mm", 32, 24, 28)
        ga = genetic_search(op, 300, GASettings(population=32, generations=30))
        ex = exhaustive_search(op, 300)
        assert ga.memory_access <= 1.3 * ex.memory_access

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            genetic_search(matmul("mm", 4, 4, 4), 0)


class TestFusedSearch:
    def pair(self):
        op1 = matmul("mm1", 32, 16, 24)
        op2 = matmul("mm2", 32, 24, 20, a=op1.output)
        return op1, op2

    def test_exhaustive_fused_feasible_and_fusable(self):
        from repro.dataflow import FusedChain, fused_memory_access

        ops = self.pair()
        result = exhaustive_fused_search(ops, 1500)
        assert result is not None
        chain = result.chain
        assert result.dataflow.buffer_footprint(chain) <= 1500
        assert fused_memory_access(chain, result.dataflow).fusable

    def test_exhaustive_fused_infeasible(self):
        ops = self.pair()
        assert exhaustive_fused_search(ops, 2) is None

    def test_genetic_fused_deterministic(self):
        ops = self.pair()
        a = genetic_fused_search(ops, 1500, population=16, generations=8, seed=5)
        b = genetic_fused_search(ops, 1500, population=16, generations=8, seed=5)
        assert a.memory_access == b.memory_access

    def test_genetic_fused_close_to_exhaustive(self):
        ops = self.pair()
        ga = genetic_fused_search(ops, 1500, population=32, generations=25)
        ex = exhaustive_fused_search(ops, 1500)
        assert ga is not None and ex is not None
        assert ga.memory_access <= 1.5 * ex.memory_access

    def test_describe(self):
        ops = self.pair()
        result = exhaustive_fused_search(ops, 1500)
        assert "mm1+mm2" in result.describe()
