"""Tests for the exact branch-and-bound optimizer -- and the certification
of the one-shot principles against it.

Branch and bound is provably globally optimal over the modeled space (loop
orders x trip counts; every tiling is dominated by its trip-count-snapped
form).  The headline test below is therefore the strongest optimality
statement in the suite: the principles' constant-work construction equals
the exact optimum on randomized operators and buffers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import mm_ops
from repro.core import InfeasibleError, optimize_intra
from repro.ir import matmul
from repro.search import branch_and_bound_search, exhaustive_search


class TestBranchAndBound:
    def test_matches_exhaustive_on_small_ops(self):
        """On spaces small enough to brute-force densely, B&B agrees."""
        import itertools

        from repro.dataflow import Dataflow, Schedule, Tiling, memory_access
        from repro.dataflow import all_schedules

        op = matmul("mm", 8, 6, 10)
        for budget in (12, 30, 80, 200):
            bb = branch_and_bound_search(op, budget)
            best = None
            for tiles in itertools.product(
                range(1, 9), range(1, 7), range(1, 11)
            ):
                tiling = Tiling(dict(zip(("M", "K", "L"), tiles)))
                if tiling.buffer_footprint(op) > budget:
                    continue
                for schedule in all_schedules(op):
                    total = memory_access(op, Dataflow(tiling, schedule)).total
                    best = total if best is None else min(best, total)
            if best is None:
                assert bb is None
            else:
                assert bb is not None
                assert bb.memory_access == best, budget

    def test_infeasible(self):
        assert branch_and_bound_search(matmul("mm", 16, 16, 16), 2) is None

    def test_result_fits_buffer(self):
        op = matmul("mm", 64, 48, 56)
        for budget in (20, 200, 2000):
            result = branch_and_bound_search(op, budget)
            assert result.dataflow.buffer_footprint(op) <= budget

    def test_beats_or_ties_grid_search(self):
        op = matmul("mm", 96, 64, 80)
        for budget in (100, 1000, 10000):
            bb = branch_and_bound_search(op, budget)
            grid = exhaustive_search(op, budget)
            assert bb.memory_access <= grid.memory_access


class TestPrinciplesCertifiedOptimal:
    """The strongest reproduction claim: one-shot == exact global optimum."""

    @given(mm_ops(min_dim=2, max_dim=160), st.integers(8, 30000))
    @settings(max_examples=60, deadline=None)
    def test_principles_equal_branch_and_bound(self, op, budget):
        bb = branch_and_bound_search(op, budget)
        try:
            principled = optimize_intra(op, budget)
        except InfeasibleError:
            assert bb is None
            return
        assert bb is not None
        assert principled.memory_access == bb.memory_access, (
            dict(op.dims),
            budget,
            principled.memory_access,
            bb.memory_access,
        )

    def test_paper_example_certified(self):
        op = matmul("bert", 1024, 768, 768)
        bb = branch_and_bound_search(op, 512 * 1024)
        principled = optimize_intra(op, 512 * 1024)
        assert principled.memory_access == bb.memory_access == 2752512


class TestFusedPatternsCertifiedOptimal:
    """The Fig. 4 pattern set covers the global fused optimum exactly."""

    @given(
        st.integers(2, 100),
        st.integers(2, 100),
        st.integers(2, 100),
        st.integers(2, 100),
        st.integers(16, 20000),
    )
    @settings(max_examples=30, deadline=None)
    def test_full_arrow_set_equals_fused_branch_and_bound(self, m, k, l, n, budget):
        """The complete Fig. 4 arrow set (green same-NRA + red cross-NRA
        patterns) hits the exact fused global optimum."""
        from repro.core import optimize_fused
        from repro.search import branch_and_bound_fused_search

        op1 = matmul("mm1", m, k, l)
        op2 = matmul("mm2", m, l, n, a=op1.output)
        bb = branch_and_bound_fused_search([op1, op2], budget)
        patterned = optimize_fused([op1, op2], budget, include_cross=True)
        if bb is None:
            assert patterned is None
            return
        assert patterned is not None
        assert patterned.memory_access == bb.memory_access, (
            (m, k, l, n),
            budget,
        )

    def test_roadmap_counterexample_m43_k2_l19_n23(self):
        """Pinned counterexample once tracked in the ROADMAP: hypothesis
        found (m=43, k=2, l=19, n=23, budget=173) where the full arrow set
        sat ~0.7% above the exact fused optimum (3964 vs 3936).  The gap
        was not an inexpressible uneven tiling -- the tiles were fine -- but
        the role-priority shared-loop order: with K untiled, A's multiplier
        depends on whether M or L is outermost, and the optimum needs the
        non-priority (L, M) order.  ``optimize_fused`` now enumerates every
        permutation of the shared dims, so this asserts exact equality."""
        from repro.core import optimize_fused
        from repro.search import branch_and_bound_fused_search

        op1 = matmul("mm1", 43, 2, 19)
        op2 = matmul("mm2", 43, 19, 23, a=op1.output)
        bb = branch_and_bound_fused_search([op1, op2], 173)
        patterned = optimize_fused([op1, op2], 173, include_cross=True)
        assert bb is not None and patterned is not None
        assert patterned.memory_access == bb.memory_access, (
            patterned.memory_access,
            bb.memory_access,
        )

    @given(
        st.integers(2, 100),
        st.integers(2, 100),
        st.integers(2, 100),
        st.integers(2, 100),
        st.integers(16, 20000),
    )
    @settings(max_examples=30, deadline=None)
    def test_green_arrows_near_optimal(self, m, k, l, n, budget):
        """Principle 4's same-NRA-only restriction stays within a small
        factor of the exact fused optimum (deviation D2: cross patterns win
        only whisker margins on asymmetric shapes)."""
        from repro.core import optimize_fused
        from repro.search import branch_and_bound_fused_search

        op1 = matmul("mm1", m, k, l)
        op2 = matmul("mm2", m, l, n, a=op1.output)
        bb = branch_and_bound_fused_search([op1, op2], budget)
        patterned = optimize_fused([op1, op2], budget, include_cross=False)
        if bb is None or patterned is None:
            return
        assert patterned.memory_access <= 1.10 * bb.memory_access, (
            (m, k, l, n),
            budget,
        )

    def test_fused_bb_returns_valid_dataflow(self):
        from repro.dataflow import FusedChain, fused_memory_access
        from repro.search import branch_and_bound_fused_search

        op1 = matmul("mm1", 64, 32, 48)
        op2 = matmul("mm2", 64, 48, 40, a=op1.output)
        result = branch_and_bound_fused_search([op1, op2], 2000)
        chain = FusedChain.from_ops([op1, op2])
        report = fused_memory_access(chain, result.dataflow)
        assert report.fusable
        assert report.total == result.memory_access
        assert result.dataflow.buffer_footprint(chain) <= 2000
