"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests keep them from
rotting as the library evolves.  Each is executed in-process (import +
``main()``) with stdout captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: Fast examples run in CI-style tests; the llama2 sweep (~10 s) is marked.
FAST_EXAMPLES = [
    "quickstart.py",
    "bert_fusion_analysis.py",
    "accelerator_comparison.py",
    "fusecu_simulation.py",
    "fused_attention_demo.py",
    "resnet_conv_analysis.py",
    "regime_map.py",
]


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", path
    )
    module = importlib.util.module_from_spec(spec)
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    output = run_example(name, capsys)
    assert len(output) > 100  # produced a real report, not a stub


def test_quickstart_reproduces_paper_example(capsys):
    output = run_example("quickstart.py", capsys)
    assert "Two-NRA" in output or "two" in output.lower()
    assert "matched or beat search: True" in output


def test_fused_attention_demo_is_exact(capsys):
    output = run_example("fused_attention_demo.py", capsys)
    assert "numerically exact vs softmax(QK^T)V: True" in output
    assert "score/probability traffic: 0" in output


def test_slow_example_llama2(capsys):
    """The Fig. 11 study (slower; still bounded)."""
    output = run_example("llama2_seqlen_study.py", capsys)
    assert "seq len" in output
