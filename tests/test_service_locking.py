"""Advisory locking: exactly one writer per journal / cache file.

``flock`` conflicts apply between distinct open file descriptions even
inside one process, so these tests exercise the real kernel behavior
in-process: a second open of a locked journal must fail loudly, and the
lock must evaporate when the holder closes (the stand-in for process
death -- the kernel applies the same rule on SIGKILL).
"""

from __future__ import annotations

import pytest

from repro.service import (
    LOCKING_SUPPORTED,
    BatchJournal,
    FileLock,
    FileLockedError,
    JournalLockedError,
    lock_handle,
)

needs_flock = pytest.mark.skipif(
    not LOCKING_SUPPORTED, reason="fcntl.flock unavailable on this platform"
)


@needs_flock
class TestLockHandle:
    def test_second_handle_raises(self, tmp_path):
        path = str(tmp_path / "state")
        first = open(path, "ab")
        second = open(path, "ab")
        try:
            lock_handle(first, path, purpose="state")
            with pytest.raises(FileLockedError) as excinfo:
                lock_handle(second, path, purpose="state")
            assert "state" in str(excinfo.value)
            assert path in str(excinfo.value)
        finally:
            first.close()
            second.close()

    def test_lock_released_when_holder_closes(self, tmp_path):
        path = str(tmp_path / "state")
        first = open(path, "ab")
        lock_handle(first, path)
        first.close()  # owner death: the kernel releases the flock
        second = open(path, "ab")
        try:
            assert lock_handle(second, path) is True
        finally:
            second.close()


@needs_flock
class TestJournalLocking:
    def test_live_journal_refuses_a_second_writer(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        try:
            with pytest.raises(JournalLockedError) as excinfo:
                BatchJournal(path, resume=True)
            assert "exactly one writer" in str(excinfo.value)
        finally:
            journal.close()

    def test_fresh_journal_is_locked_too(self, tmp_path):
        # The lock must cover creation, not just resume: two processes
        # racing to create the same journal is the same corruption.
        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        try:
            with pytest.raises(JournalLockedError):
                BatchJournal(path, resume=True)
        finally:
            journal.close()

    def test_closed_journal_resumes_cleanly(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        journal.record_completion(
            "k1", {"index": 0, "key": "k1", "kind": "intra", "ok": True,
                   "result": {"x": 1}}
        )
        journal.close()
        resumed = BatchJournal(path, resume=True)
        try:
            assert list(resumed.completed) == ["k1"]
        finally:
            resumed.close()

    def test_lock_failure_never_truncates_the_live_journal(self, tmp_path):
        # Recovery truncates torn tails; a second opener must fail at the
        # lock BEFORE any recovery write path can touch the live file.
        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        journal.record_completion(
            "k1", {"index": 0, "key": "k1", "kind": "intra", "ok": True,
                   "result": {"x": 1}}
        )
        with open(path, "rb") as handle:
            before = handle.read()
        with pytest.raises(JournalLockedError):
            BatchJournal(path, resume=True)
        with open(path, "rb") as handle:
            assert handle.read() == before
        journal.close()


@needs_flock
class TestFileLock:
    def test_exclusive_between_two_locks(self, tmp_path):
        path = str(tmp_path / "results.cache.lock")
        lock = FileLock(path, purpose="cache file").acquire()
        try:
            with pytest.raises(FileLockedError):
                FileLock(path, purpose="cache file").acquire()
        finally:
            lock.release()
        # Released: the next owner walks right in.
        with FileLock(path, purpose="cache file") as again:
            assert again.held

    def test_sidecar_survives_release(self, tmp_path):
        # Deleting a flock'd sidecar is a classic race; the file must
        # outlive its lock.
        path = tmp_path / "cache.lock"
        with FileLock(str(path)):
            assert path.exists()
        assert path.exists()

    def test_acquire_is_idempotent_for_the_holder(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock")).acquire()
        try:
            assert lock.acquire() is lock
        finally:
            lock.release()
        lock.release()  # double release is a no-op
