"""Unit tests for the daemon's admission gates and latency reservoir.

Everything here runs against a fake clock -- no sleeps, no sockets --
so the token-bucket math, queue bounds, and reservoir decimation are
checked exactly.
"""

from __future__ import annotations

import threading

import pytest

from repro.server import (
    AdmissionController,
    QueueFullError,
    RateLimitedError,
    RateLimiter,
    TokenBucket,
)
from repro.service import LatencyReservoir


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)

    def test_refill_is_proportional_to_elapsed_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == pytest.approx(0.5)
        clock.advance(0.25)  # half a token refilled
        assert bucket.try_acquire() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)  # would refill 1000 tokens uncapped
        assert bucket.available() == pytest.approx(2.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


# ----------------------------------------------------------------------
# RateLimiter
# ----------------------------------------------------------------------
class TestRateLimiter:
    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        limiter.check("alice")
        with pytest.raises(RateLimitedError):
            limiter.check("alice")
        limiter.check("bob")  # unaffected by alice's empty bucket

    def test_rejection_carries_retry_hint(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=1, clock=clock)
        limiter.check("c")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.check("c")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == pytest.approx(0.5)

    def test_refill_readmits(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        limiter.check("c")
        with pytest.raises(RateLimitedError):
            limiter.check("c")
        clock.advance(1.0)
        limiter.check("c")

    def test_default_burst_tracks_rate(self):
        assert RateLimiter(rate=8.0).burst == 8
        assert RateLimiter(rate=0.5).burst == 1

    def test_bucket_table_is_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=2, clock=clock)
        limiter.check("a")
        with pytest.raises(RateLimitedError):
            limiter.check("a")
        # Two new identities evict "a"'s (least-recently-used) bucket...
        limiter.check("b")
        limiter.check("c")
        # ...so "a" starts over with a full bucket (errs toward admitting).
        limiter.check("a")
        assert limiter.snapshot()["clients"] == 2


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_admits_up_to_max_concurrency(self):
        controller = AdmissionController(max_concurrency=2, queue_depth=0)
        ctx_a, ctx_b = controller.admit("x"), controller.admit("x")
        ctx_a.__enter__()
        ctx_b.__enter__()
        assert controller.snapshot()["active"] == 2
        with pytest.raises(QueueFullError) as excinfo:
            with controller.admit("x"):
                pass  # pragma: no cover - never admitted
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after > 0
        ctx_b.__exit__(None, None, None)
        ctx_a.__exit__(None, None, None)
        snap = controller.snapshot()
        assert snap["active"] == 0
        assert snap["admitted"] == 2
        assert snap["rejected_queue_full"] == 1

    def test_queue_depth_lets_callers_wait_for_a_slot(self):
        controller = AdmissionController(max_concurrency=1, queue_depth=1)
        holder = controller.admit("x")
        holder.__enter__()
        entered = threading.Event()
        released = threading.Event()

        def queued_caller():
            with controller.admit("x"):
                entered.set()
                released.wait(timeout=5.0)

        thread = threading.Thread(target=queued_caller, daemon=True)
        thread.start()
        # The queued caller is waiting, not rejected...
        for _ in range(100):
            if controller.snapshot()["waiting"] == 1:
                break
            threading.Event().wait(0.01)
        assert controller.snapshot()["waiting"] == 1
        assert not entered.is_set()
        # ...and a third caller overflows the queue.
        with pytest.raises(QueueFullError):
            with controller.admit("x"):
                pass  # pragma: no cover
        holder.__exit__(None, None, None)
        assert entered.wait(timeout=5.0)
        released.set()
        thread.join(timeout=5.0)
        assert controller.snapshot()["active"] == 0

    def test_rate_limit_gate_applies_before_slots(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_concurrency=4, queue_depth=4, rate_limit=1.0, burst=1,
            clock=clock,
        )
        with controller.admit("chatty"):
            pass
        with pytest.raises(RateLimitedError):
            with controller.admit("chatty"):
                pass  # pragma: no cover
        snap = controller.snapshot()
        assert snap["rejected_rate_limited"] == 1
        assert snap["rate_limit"]["burst"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=-1)


# ----------------------------------------------------------------------
# LatencyReservoir
# ----------------------------------------------------------------------
class TestLatencyReservoir:
    def test_exact_count_mean_max(self):
        reservoir = LatencyReservoir(capacity=4)
        reservoir.extend([0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
        summary = reservoir.summary()
        assert summary["count"] == 6
        assert summary["mean"] == pytest.approx(0.35)
        assert summary["max"] == pytest.approx(0.6)

    def test_sample_stays_bounded(self):
        reservoir = LatencyReservoir(capacity=16)
        reservoir.extend(float(i) for i in range(10_000))
        summary = reservoir.summary()
        assert summary["count"] == 10_000
        assert summary["samples"] < 16
        # Decimation keeps a uniform systematic sample, so the median
        # estimate stays in the middle of the stream.
        assert 2_000 <= summary["p50"] <= 8_000

    def test_deterministic_across_identical_streams(self):
        values = [((i * 7919) % 1000) / 1000.0 for i in range(5000)]
        first = LatencyReservoir(capacity=64)
        second = LatencyReservoir(capacity=64)
        first.extend(values)
        second.extend(values)
        assert first.summary() == second.summary()

    def test_percentiles_nearest_rank(self):
        reservoir = LatencyReservoir(capacity=512)
        reservoir.extend(float(i) for i in range(1, 101))
        assert reservoir.percentile(0.50) == 50.0
        assert reservoir.percentile(0.95) == 95.0
        assert reservoir.percentile(0.99) == 99.0
        assert reservoir.percentile(1.0) == 100.0

    def test_empty_summary(self):
        summary = LatencyReservoir().summary()
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert LatencyReservoir().percentile(0.5) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=1)
        with pytest.raises(ValueError):
            LatencyReservoir().percentile(0.0)
