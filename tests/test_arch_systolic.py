"""Tests for the XS PE and the cycle-driven systolic-array simulator.

The simulator is the RTL stand-in, so it gets the strongest checks:
numerics against numpy for every mode and shape (hypothesis), and the
vectorized array cross-checked against a grid of scalar reference PEs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import PEMode, RunStats, SystolicArray, XSPE


def random_arrays(max_dim=12):
    dims = st.integers(min_value=1, max_value=max_dim)
    return st.tuples(dims, dims, dims, st.integers(0, 2 ** 31 - 1))


class TestXSPE:
    def test_os_accumulates(self):
        pe = XSPE(PEMode.OS)
        pe.step(2.0, 3.0)
        pe.step(4.0, 5.0)
        assert pe.acc == 26.0

    def test_os_forwards_operands(self):
        pe = XSPE(PEMode.OS)
        out = pe.step(2.0, 3.0)
        assert out.right == 2.0
        assert out.down == 3.0

    def test_ws_multiplies_stationary(self):
        pe = XSPE(PEMode.WS)
        pe.load_stationary(10.0)
        out = pe.step(3.0, 5.0)
        assert out.down == 35.0
        assert out.right == 3.0

    def test_forward_result_mux(self):
        """The column-fusion MUX emits the accumulator instead of the
        pass-through activation (paper Fig. 6)."""
        pe = XSPE(PEMode.OS, forward_result=True)
        pe.step(2.0, 3.0)
        out = pe.step(4.0, 5.0)
        assert out.right == pe.acc

    def test_promote_acc_for_tile_fusion(self):
        pe = XSPE(PEMode.OS)
        pe.step(2.0, 3.0)
        pe.configure(PEMode.IS)
        pe.promote_acc()
        out = pe.step(7.0, 0.0)
        assert out.down == 42.0  # 6 (promoted C) * 7 (streamed D)

    def test_clear(self):
        pe = XSPE(PEMode.OS)
        pe.step(2.0, 3.0)
        pe.clear()
        assert pe.acc == 0.0 and pe.stationary == 0.0


class TestSystolicModes:
    @given(random_arrays())
    @settings(max_examples=40, deadline=None)
    def test_os_matches_numpy(self, spec):
        m, k, l, seed = spec
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        array = SystolicArray(max(m, 1), max(l, 1))
        result, _stats = array.run_os(a, b)
        assert np.allclose(result, a @ b)

    @given(random_arrays())
    @settings(max_examples=40, deadline=None)
    def test_ws_matches_numpy(self, spec):
        m, k, l, seed = spec
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(k, l))
        act = rng.normal(size=(m, k))
        array = SystolicArray(k, l)
        result, _stats = array.run_ws(w, act)
        assert np.allclose(result, act @ w)

    @given(random_arrays())
    @settings(max_examples=40, deadline=None)
    def test_is_matches_numpy(self, spec):
        m, k, l, seed = spec
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        array = SystolicArray(k, m)
        result, _stats = array.run_is(a, b)
        assert np.allclose(result, a @ b)

    def test_os_rejects_oversized_tile(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError, match="exceeds"):
            array.run_os(np.ones((5, 3)), np.ones((3, 4)))

    def test_ws_rejects_oversized_tile(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError, match="exceeds"):
            array.run_ws(np.ones((5, 4)), np.ones((3, 5)))

    def test_dim_mismatch_rejected(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError, match="mismatch"):
            array.run_os(np.ones((4, 3)), np.ones((2, 4)))

    def test_os_cycle_count(self):
        """OS latency: k + m + l - 2 compute beats plus an l-beat drain."""
        array = SystolicArray(8, 8)
        _, stats = array.run_os(np.ones((6, 10)), np.ones((10, 7)))
        assert stats.cycles == 10 + 6 + 7 - 2 + 7


class TestSystolicVsScalarPEs:
    def test_os_matches_pe_grid(self):
        """Vectorized OS == literal grid of scalar XS PEs."""
        rng = np.random.default_rng(0)
        m = l = 3
        k = 4
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        pes = [[XSPE(PEMode.OS) for _ in range(l)] for _ in range(m)]
        a_wire = np.zeros((m, l))
        b_wire = np.zeros((m, l))
        for t in range(k + m + l - 2):
            new_a = np.zeros((m, l))
            new_b = np.zeros((m, l))
            for i in range(m):
                for j in range(l):
                    left = (
                        a[i, t - i] if j == 0 and 0 <= t - i < k else (
                            a_wire[i, j - 1] if j > 0 else 0.0
                        )
                    )
                    top = (
                        b[t - j, j] if i == 0 and 0 <= t - j < k else (
                            b_wire[i - 1, j] if i > 0 else 0.0
                        )
                    )
                    out = pes[i][j].step(left, top)
                    new_a[i, j] = out.right
                    new_b[i, j] = out.down
            a_wire, b_wire = new_a, new_b
        grid_result = np.array([[pes[i][j].acc for j in range(l)] for i in range(m)])
        vector_result, _ = SystolicArray(m, l).run_os(a, b)
        assert np.allclose(grid_result, a @ b)
        assert np.allclose(grid_result, vector_result)


class TestTiledMatmul:
    @pytest.mark.parametrize("mode", ["os", "ws", "is"])
    def test_arbitrary_sizes(self, mode, rng):
        array = SystolicArray(8, 8)
        a = rng.normal(size=(19, 13))
        b = rng.normal(size=(13, 21))
        result, stats = array.matmul(a, b, mode)
        assert np.allclose(result, a @ b)
        assert stats.cycles > 0

    def test_unknown_mode(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError, match="unknown mode"):
            array.matmul(np.ones((4, 4)), np.ones((4, 4)), "xx")

    def test_stats_merge(self):
        merged = RunStats(1, 2, 3, 4).merge(RunStats(10, 20, 30, 40))
        assert (merged.cycles, merged.input_words, merged.output_words,
                merged.stationary_loads) == (11, 22, 33, 44)
