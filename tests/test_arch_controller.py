"""Tests for the FuseCU configuration compiler (Fig. 7 mappings)."""

import pytest

from repro.arch import (
    FuseCUConfig,
    compile_fused_mapping,
    compile_intra_mapping,
)
from repro.arch.controller import MappingError
from repro.arch.pe import PEMode
from repro.core import optimize_fused, optimize_intra, profitable_patterns, solve_pattern
from repro.core.fusion import FusedResult, per_op_nra_classes
from repro.dataflow import FusedChain, FusedMappingKind, fused_memory_access
from repro.ir import matmul


def fused_result_for_pattern(label, m=128, k=32, l=128, n=32, buffer_elems=30000):
    op1 = matmul("mm1", m, k, l)
    op2 = matmul("mm2", m, l, n, a=op1.output)
    chain = FusedChain.from_ops([op1, op2])
    pattern = next(p for p in profitable_patterns(chain) if p.label == label)
    dataflow = solve_pattern(chain, pattern, buffer_elems)
    assert dataflow is not None, label
    report = fused_memory_access(chain, dataflow)
    return FusedResult(
        chain=chain,
        pattern=pattern,
        dataflow=dataflow,
        report=report,
        per_op_nra=per_op_nra_classes(chain, dataflow),
    )


class TestIntraCompilation:
    def test_output_stationary_maps_to_os(self):
        op = matmul("mm", 256, 256, 256)
        result = optimize_intra(op, 1000)  # tiny regime: single-NRA
        program = compile_intra_mapping(result)
        modes = {setting.mode for setting in program.cu_settings}
        assert len(modes) == 1
        assert not program.fused

    def test_all_cus_configured(self):
        op = matmul("mm", 256, 256, 256)
        program = compile_intra_mapping(optimize_intra(op, 1000))
        assert len(program.cu_settings) == FuseCUConfig().cus

    def test_shape_selected_for_utilization(self):
        """A 64-wide stationary tensor picks a shape covering its aspect."""
        op = matmul("mm", 1024, 64, 1024)
        result = optimize_intra(op, 512 * 1024)
        program = compile_intra_mapping(result, FuseCUConfig(n=128))
        assert program.utilization > 0


class TestFusedCompilation:
    def test_tile_like_pattern_compiles_to_tile_fusion(self):
        result = fused_result_for_pattern("single-osis")
        program = compile_fused_mapping(result, FuseCUConfig(n=128))
        assert program.kind is FusedMappingKind.TILE_FUSION
        assert all(s.mode is PEMode.OS for s in program.cu_settings)

    def test_column_like_pattern_compiles_to_column_fusion(self):
        result = fused_result_for_pattern("two-osis[M]")
        program = compile_fused_mapping(result, FuseCUConfig(n=128))
        assert program.kind is FusedMappingKind.COLUMN_FUSION
        producer = [s for s in program.cu_settings if s.mode is PEMode.IS]
        consumer = [s for s in program.cu_settings if s.mode is PEMode.OS]
        assert producer and consumer
        assert all(s.forward_result for s in producer)
        assert program.connections

    def test_two_untile_is_tile_fusion(self):
        """Fig. 4(c): untiled-L with maximized M is tile-like."""
        result = fused_result_for_pattern("two-untile[L]")
        program = compile_fused_mapping(result, FuseCUConfig(n=128))
        assert program.kind is FusedMappingKind.TILE_FUSION

    def test_three_untile_is_column_fusion(self):
        """Fig. 4(d): untiled-L with minimized M is column-like."""
        result = fused_result_for_pattern(
            "three-untile[L]", buffer_elems=50000
        )
        program = compile_fused_mapping(result, FuseCUConfig(n=128))
        assert program.kind is FusedMappingKind.COLUMN_FUSION

    def test_2n_bound_enforced(self):
        """An untiled spatial dim beyond 2N is rejected (Sec. IV-B)."""
        result = fused_result_for_pattern(
            "three-resident", m=96, l=96, buffer_elems=50000
        )
        compile_fused_mapping(result, FuseCUConfig(n=64))  # 96 <= 128: fine
        with pytest.raises(MappingError, match="2N"):
            compile_fused_mapping(result, FuseCUConfig(n=32))  # 96 > 64

    def test_end_to_end_with_optimizer(self):
        op1 = matmul("mm1", 256, 64, 256)
        op2 = matmul("mm2", 256, 256, 64, a=op1.output)
        result = optimize_fused([op1, op2], 512 * 1024)
        program = compile_fused_mapping(result, FuseCUConfig(n=128))
        assert program.fused
        assert program.description
