"""Tests for the energy model extension."""

import pytest

from repro.arch import (
    ALL_PLATFORMS,
    EnergyModel,
    EnergyReport,
    energy_of,
    evaluate_graph,
    fusecu,
    tpuv4i,
)
from repro.workloads import BLENDERBOT, build_layer_graph


@pytest.fixture(scope="module")
def perfs():
    graph = build_layer_graph(BLENDERBOT)
    return {
        factory().name: evaluate_graph(graph, factory())
        for factory in ALL_PLATFORMS
    }


class TestEnergyModel:
    def test_defaults_valid(self):
        model = EnergyModel()
        assert model.dram_pj > model.sram_pj > model.mac_pj

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_pj=0)
        with pytest.raises(ValueError):
            EnergyModel(mac_pj=-1)


class TestEnergyReports:
    def test_decomposition_sums(self, perfs):
        report = energy_of(perfs["TPUv4i"])
        assert report.total_pj == pytest.approx(
            report.dram_pj + report.buffer_pj + report.compute_pj
        )

    def test_dram_share_meaningful(self, perfs):
        report = energy_of(perfs["TPUv4i"])
        assert 0 < report.dram_share < 1

    def test_ma_saving_translates_to_energy_saving(self, perfs):
        """The paper's motivation: memory access drives energy."""
        fusecu_energy = energy_of(perfs["FuseCU"])
        tpu_energy = energy_of(perfs["TPUv4i"])
        saving = fusecu_energy.saving_over(tpu_energy)
        assert saving > 0
        # Energy saving is bounded by the MA saving (compute is constant).
        ma_saving = 1 - (
            perfs["FuseCU"].total_memory_access
            / perfs["TPUv4i"].total_memory_access
        )
        assert saving <= ma_saving + 1e-9

    def test_compute_energy_platform_invariant(self, perfs):
        reports = {name: energy_of(perf) for name, perf in perfs.items()}
        compute = {round(report.compute_pj) for report in reports.values()}
        assert len(compute) == 1  # same MACs everywhere

    def test_custom_model_scales_dram(self, perfs):
        cheap = energy_of(perfs["TPUv4i"], EnergyModel(dram_pj=1.0))
        pricey = energy_of(perfs["TPUv4i"], EnergyModel(dram_pj=100.0))
        assert pricey.dram_pj == pytest.approx(100 * cheap.dram_pj)

    def test_saving_over_requires_positive(self):
        zero = EnergyReport("x", "w", 0.0, 0.0, 0.0)
        other = EnergyReport("y", "w", 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            other.saving_over(zero)

    def test_total_mj_unit(self, perfs):
        report = energy_of(perfs["TPUv4i"])
        assert report.total_mj == pytest.approx(report.total_pj / 1e9)
