"""Unit tests for the MA(BS) sweep harness."""

import pytest

from repro.core import three_nra_threshold
from repro.experiments import render_sweep, run_sweep
from repro.ir import matmul


class TestRunSweep:
    @pytest.fixture(scope="class")
    def curves(self):
        ops = [matmul("a", 96, 64, 80), matmul("b", 256, 32, 256)]
        return run_sweep(ops, max_points=12), ops

    def test_one_curve_per_operator(self, curves):
        result, ops = curves
        assert [curve.operator for curve in result] == [op.name for op in ops]

    def test_corners_strictly_improve(self, curves):
        result, _ops = curves
        for curve in result:
            values = [p.memory_access for p in curve.points]
            assert values == sorted(values, reverse=True)
            assert len(set(values)) == len(values)

    def test_final_corner_is_ideal(self, curves):
        result, ops = curves
        for curve, op in zip(result, ops):
            assert curve.points[-1].memory_access == op.ideal_memory_access()
            assert curve.ideal == op.ideal_memory_access()

    def test_annotations(self, curves):
        result, ops = curves
        for curve, op in zip(result, ops):
            d_min = min(op.dims.values())
            assert curve.shift_band == (d_min ** 2 / 4, d_min ** 2 / 2)
            assert curve.three_nra_at == three_nra_threshold(op)

    def test_normalized(self, curves):
        result, _ops = curves
        for curve in result:
            normalized = curve.normalized()
            assert normalized[-1][1] == pytest.approx(1.0)
            assert all(value >= 1.0 for _b, value in normalized)


class TestRenderSweep:
    def test_render_contains_charts_and_tables(self):
        curves = run_sweep([matmul("op", 64, 48, 56)], max_points=8)
        text = render_sweep(curves)
        assert "shift band" in text
        assert "MA lower bound" in text
        assert "normalized MA vs log2(buffer)" in text
