"""End-to-end tests for the serving CLI: ``repro serve`` / ``repro call``.

The in-process tests boot a :class:`ReproServer` and drive ``repro call``
through ``main()`` so its output can be diffed byte-for-byte against
``repro batch``.  The subprocess tests exercise the real daemon contract:
the parseable "listening on" startup line, and a SIGTERM that lands while
a request is in flight yet loses nothing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.server import ReproServer, ServerConfig

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

REQUEST_LINES = [
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {"kind": "fusion", "m": 96, "k": 64, "l": 80, "n": 72,
     "buffer_elems": 16384},
    {"kind": "sweep_point", "m": 32, "k": 32, "l": 32, "buffer_elems": 1024},
    {"kind": "graph_plan", "model": "NotAModel", "buffer_elems": 1024},
]


def _write_requests(path):
    path.write_text(
        "\n".join(json.dumps(line) for line in REQUEST_LINES) + "\n",
        encoding="utf-8",
    )


@pytest.fixture
def live_server():
    with ReproServer(ServerConfig(port=0, jobs=2)) as server:
        yield server


class TestVersionBanner:
    def test_version_reports_protocol_and_cache_schema(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        banner = capsys.readouterr().out
        assert banner.startswith("repro ")
        assert "protocol" in banner
        assert "cache schema" in banner


class TestCallCommand:
    def test_call_output_is_byte_identical_to_batch(
        self, live_server, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        assert main(["batch", str(requests)]) == 0
        batch_out = capsys.readouterr().out
        assert main(["call", str(requests), "--url", live_server.url]) == 0
        call_out = capsys.readouterr().out
        assert call_out == batch_out

    def test_chunked_call_is_byte_identical_too(
        self, live_server, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        assert main(["batch", str(requests)]) == 0
        batch_out = capsys.readouterr().out
        assert (
            main(["call", str(requests), "--url", live_server.url,
                  "--chunk-size", "1"])
            == 0
        )
        assert capsys.readouterr().out == batch_out

    def test_output_file_and_server_stats(
        self, live_server, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        output = tmp_path / "results.jsonl"
        assert (
            main(["call", str(requests), "--url", live_server.url,
                  "--output", str(output), "--server-stats"])
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == ""
        # stderr carries the stats JSON followed by the failure summary
        # line (the request file deliberately contains one bad request).
        stats, _ = json.JSONDecoder().raw_decode(
            captured.err[captured.err.index("{"):]
        )
        assert stats["serving"]["requests_served"] == len(REQUEST_LINES)
        records = [
            json.loads(line)
            for line in output.read_text(encoding="utf-8").splitlines()
        ]
        assert [record["index"] for record in records] == [0, 1, 2, 3]

    def test_strict_exits_nonzero_on_request_errors(
        self, live_server, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)  # the graph_plan line errors
        assert (
            main(["call", str(requests), "--url", live_server.url,
                  "--strict"])
            == 1
        )
        assert "failed" in capsys.readouterr().err

    def test_health_probe(self, live_server, capsys):
        assert main(["call", "--health", "--url", live_server.url]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["ok"] is True
        assert health["server"] == "repro-server"

    def test_unreachable_server_exits_3(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        # A port from the ephemeral range with (almost surely) no listener;
        # a single attempt fails fast.
        assert (
            main(["call", str(requests), "--url", "http://127.0.0.1:1",
                  "--retries", "1", "--timeout", "2"])
            == 3
        )
        assert "unreachable" in capsys.readouterr().err


class TestServeSubprocess:
    """The real daemon contract: boot, serve, SIGTERM, lose nothing."""

    @staticmethod
    def _spawn_server(extra_args=(), extra_env=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FAULTS", None)
        if extra_env:
            env.update(extra_env)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             *extra_args],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        # The startup contract: a parseable "listening on URL" stderr line.
        line = process.stderr.readline()
        assert "listening on" in line, line
        url = next(
            token for token in line.split() if token.startswith("http://")
        )
        return process, url

    @staticmethod
    def _run_call(url, requests_path, timeout=120):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FAULTS", None)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "call", str(requests_path),
             "--url", url],
            capture_output=True,
            text=True,
            env=env,
            timeout=timeout,
        )

    def test_sigterm_mid_flight_drains_losslessly(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        # Every intra evaluation in the *server* stalls 0.8s, giving
        # SIGTERM a wide-open window to land while work is in flight.
        process, url = self._spawn_server(
            extra_env={"REPRO_FAULTS": "delay:intra:seconds=0.8"}
        )
        try:
            call = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "call", str(requests),
                 "--url", url],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env={
                    **os.environ,
                    "PYTHONPATH": REPO_SRC + os.pathsep
                    + os.environ.get("PYTHONPATH", ""),
                },
                text=True,
            )
            # Wait until the server has actually received the analyze
            # call (a fixed sleep races the client's interpreter startup
            # on a loaded box), then land SIGTERM inside the 0.8s
            # delayed evaluation window.
            import urllib.request

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(
                        url + "/stats", timeout=5
                    ) as response:
                        stats = json.load(response)
                    if stats["serving"].get("analyze_calls", 0) >= 1:
                        break
                except OSError:
                    pass
                time.sleep(0.05)
            else:
                raise AssertionError("analyze call never reached the server")
            time.sleep(0.2)  # inside the delayed evaluation
            process.send_signal(signal.SIGTERM)
            call_out, call_err = call.communicate(timeout=120)
            _, serve_err = process.communicate(timeout=120)
        finally:
            process.kill()
            call.kill()
        assert process.returncode == 0, serve_err
        assert call.returncode == 0, call_err
        # The in-flight batch was accepted before the signal: every one
        # of its records must have been computed and returned.
        records = [json.loads(line) for line in call_out.splitlines()]
        assert [record["index"] for record in records] == [0, 1, 2, 3]
        assert "drained and stopped" in serve_err
        # And the drain must match what an undisturbed run produces.
        assert main(["batch", str(requests)]) == 0
        assert call_out == capsys.readouterr().out

    def test_serve_call_roundtrip_with_cache_persistence(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        cache_file = tmp_path / "server.cache"
        process, url = self._spawn_server(
            extra_args=("--cache-file", str(cache_file))
        )
        try:
            first = self._run_call(url, requests)
            second = self._run_call(url, requests)
            process.send_signal(signal.SIGTERM)
            _, serve_err = process.communicate(timeout=120)
        finally:
            process.kill()
        assert first.returncode == 0, first.stderr
        assert second.returncode == 0, second.stderr
        assert first.stdout == second.stdout
        assert process.returncode == 0, serve_err
        assert "saved" in serve_err and "cache" in serve_err
        assert cache_file.exists()
