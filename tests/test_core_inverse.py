"""Tests for inverse buffer-sizing queries."""

import pytest

from repro.core import (
    intra_lower_bound,
    minimal_buffer_for,
    minimal_buffer_for_ideal,
    pareto_curve,
    three_nra_threshold,
)
from repro.ir import matmul


class TestMinimalBuffer:
    def test_ideal_threshold_is_tensor_min_plus_strips(self):
        """Sec. III-A3: Three-NRA needs the smallest tensor plus one strip
        of each streaming operand."""
        op = matmul("mm", 128, 96, 112)
        minimal = minimal_buffer_for_ideal(op)
        assert minimal == three_nra_threshold(op) + 96 + 112

    def test_minimality(self):
        """One element less no longer achieves the ideal."""
        op = matmul("mm", 64, 48, 56)
        minimal = minimal_buffer_for_ideal(op)
        assert intra_lower_bound(op, minimal) == op.ideal_memory_access()
        assert intra_lower_bound(op, minimal - 1) > op.ideal_memory_access()

    def test_target_below_ideal_unreachable(self):
        op = matmul("mm", 64, 48, 56)
        assert minimal_buffer_for(op, op.ideal_memory_access() - 1) is None

    def test_looser_target_needs_less_buffer(self):
        op = matmul("mm", 128, 96, 112)
        ideal = op.ideal_memory_access()
        tight = minimal_buffer_for(op, ideal)
        loose = minimal_buffer_for(op, 2 * ideal)
        assert loose is not None and tight is not None
        assert loose <= tight

    def test_answer_achieves_target(self):
        op = matmul("mm", 96, 64, 80)
        for factor in (1.0, 1.5, 3.0, 10.0):
            target = int(op.ideal_memory_access() * factor)
            buffer_elems = minimal_buffer_for(op, target)
            assert buffer_elems is not None
            assert intra_lower_bound(op, buffer_elems) <= target


class TestParetoCurve:
    def test_monotone_decreasing(self):
        op = matmul("mm", 96, 64, 80)
        curve = pareto_curve(op)
        for earlier, later in zip(curve, curve[1:]):
            assert later.buffer_elems > earlier.buffer_elems
            assert later.memory_access < earlier.memory_access

    def test_endpoints(self):
        op = matmul("mm", 96, 64, 80)
        curve = pareto_curve(op)
        assert curve[-1].memory_access == op.ideal_memory_access()
        assert curve[0].memory_access >= curve[-1].memory_access

    def test_point_budget_respected(self):
        op = matmul("mm", 128, 96, 112)
        curve = pareto_curve(op, max_points=8)
        assert len(curve) <= 9

    def test_points_are_achievable(self):
        op = matmul("mm", 64, 48, 56)
        for point in pareto_curve(op, max_points=12):
            assert intra_lower_bound(op, point.buffer_elems) == point.memory_access
