"""Tests for the batch analysis engine (``repro.service``)."""

import json

import pytest

from repro.core import optimize_intra
from repro.ir import matmul
from repro.service import (
    BatchEngine,
    EngineConfig,
    LRUCache,
    RequestError,
    cached_optimize_intra,
    clear_intra_cache,
    fusion_request,
    intra_cache_stats,
    intra_request,
    operator_signature,
    parse_request,
    request_key,
    sweep_point_request,
)


# ----------------------------------------------------------------------
# Canonicalization / content-addressed keys
# ----------------------------------------------------------------------
class TestCanonicalization:
    def test_equal_requests_equal_keys(self):
        a = intra_request(64, 32, 48, 4096)
        b = intra_request(64, 32, 48, 4096)
        assert a == b
        assert request_key(a) == request_key(b)

    def test_dict_order_insensitive(self):
        a = parse_request(
            {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096}
        )
        b = parse_request(
            {"buffer_elems": 4096, "l": 48, "k": 32, "m": 64, "kind": "intra"}
        )
        assert request_key(a) == request_key(b)

    def test_nested_params_form_equivalent(self):
        flat = parse_request(
            {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096}
        )
        nested = parse_request(
            {
                "kind": "intra",
                "params": {"m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
            }
        )
        assert request_key(flat) == request_key(nested)

    def test_defaults_applied(self):
        implicit = parse_request(
            {"kind": "fusion", "m": 8, "k": 8, "l": 8, "n": 8, "buffer_elems": 64}
        )
        explicit = fusion_request(8, 8, 8, 8, 64, include_cross=False)
        assert request_key(implicit) == request_key(explicit)

    def test_different_params_different_keys(self):
        assert request_key(intra_request(64, 32, 48, 4096)) != request_key(
            intra_request(64, 32, 48, 8192)
        )

    def test_different_kinds_different_keys(self):
        intra = intra_request(64, 32, 48, 4096)
        sweep = sweep_point_request(64, 32, 48, 4096)
        # The shared params coincide (intra additionally carries the
        # certification knobs); only the kind separates the keys.
        shared = {
            k: v
            for k, v in intra.param_dict.items()
            if k not in ("certify", "paranoid")
        }
        assert shared == sweep.param_dict
        assert request_key(intra) != request_key(sweep)

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "bogus"},
            {"kind": "intra", "m": 64, "k": 32},  # missing l, buffer
            {"kind": "intra", "m": "64", "k": 32, "l": 48, "buffer_elems": 1},
            {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 1,
             "extra": 1},
            {"kind": "fusion", "m": 8, "k": 8, "l": 8, "n": 8,
             "buffer_elems": 64, "include_cross": "yes"},
            "not a mapping",
        ],
    )
    def test_malformed_requests_raise(self, payload):
        with pytest.raises(RequestError):
            parse_request(payload)


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order_is_lru(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via put
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.peek("a") == 10

    def test_stats_counters(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("b") == 2
        assert cache.get("a") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 1)
        assert stats.size == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_persistence_round_trip(self):
        cache = LRUCache(maxsize=4)
        for key, value in [("a", 1), ("b", 2), ("c", 3)]:
            cache.put(key, value)
        cache.get("a")  # make "a" most recent
        clone = LRUCache(maxsize=4)
        clone.load(cache.items())
        assert clone.keys() == cache.keys() == ["b", "c", "a"]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


# ----------------------------------------------------------------------
# Batch engine
# ----------------------------------------------------------------------
def _mixed_requests():
    """A small mixed batch with duplicates (structured + raw payload forms)."""
    requests = []
    for m, k, l in [(64, 32, 48), (96, 64, 80), (32, 32, 32)]:
        for buffer_elems in (1024, 4096):
            requests.append(intra_request(m, k, l, buffer_elems))
            requests.append(sweep_point_request(m, k, l, buffer_elems))
    requests.append(fusion_request(64, 32, 48, 40, 8192))
    # Duplicates, one via a scrambled raw payload.
    requests.append(intra_request(64, 32, 48, 1024))
    requests.append(
        {"buffer_elems": 4096, "l": 80, "k": 64, "m": 96, "kind": "intra"}
    )
    return requests


class TestBatchEngine:
    def test_parallel_matches_serial(self):
        requests = _mixed_requests()
        serial = BatchEngine(EngineConfig(jobs=1)).run_batch(requests)
        threaded = BatchEngine(EngineConfig(jobs=3)).run_batch(requests)
        assert serial.to_jsonl() == threaded.to_jsonl()

    def test_results_preserve_input_order(self):
        requests = _mixed_requests()
        report = BatchEngine().run_batch(requests)
        assert [entry.index for entry in report.entries] == list(
            range(len(requests))
        )
        records = report.result_records()
        assert [record["index"] for record in records] == list(
            range(len(requests))
        )

    def test_matches_direct_evaluation(self):
        report = BatchEngine().run_batch([intra_request(96, 64, 80, 4096)])
        result = report.entries[0].record["result"]
        direct = optimize_intra(matmul("mm", 96, 64, 80), 4096)
        assert result["memory_access"] == direct.memory_access
        assert result["label"] == direct.label

    def test_duplicates_deduplicated(self):
        requests = [intra_request(64, 32, 48, 4096)] * 4
        report = BatchEngine().run_batch(requests)
        assert report.computed == 1
        assert report.deduplicated == 3
        payloads = {json.dumps(r.get("result"), sort_keys=True)
                    for r in report.result_records()}
        assert len(payloads) == 1

    def test_error_isolation(self):
        requests = [
            intra_request(64, 32, 48, 4096),
            {"kind": "graph_plan", "model": "NotAModel", "buffer_elems": 1024},
            {"kind": "bogus"},
            "not json at all",
            sweep_point_request(64, 32, 48, 4096),
        ]
        report = BatchEngine(EngineConfig(jobs=2)).run_batch(requests)
        oks = [entry.ok for entry in report.entries]
        assert oks == [True, False, False, False, True]
        records = report.result_records()
        assert records[1]["error"]["type"] == "KeyError"
        assert records[2]["error"]["type"] == "RequestError"
        assert report.errors == 3

    def test_infeasible_buffer_is_structured_error(self):
        report = BatchEngine().run_batch([intra_request(64, 32, 48, 1)])
        entry = report.entries[0]
        assert not entry.ok
        assert entry.record["error"]["type"] == "InfeasibleError"

    def test_warm_cache_hit_rate(self):
        engine = BatchEngine()
        requests = _mixed_requests()
        cold = engine.run_batch(requests)
        # Only the two in-batch duplicates hit on a cold run.
        assert cold.cache.hits == cold.deduplicated == 2
        warm = engine.run_batch(requests)
        assert warm.computed == 0
        assert warm.cache.hit_rate > 0.9
        assert warm.to_jsonl() == cold.to_jsonl()

    def test_cache_eviction_under_pressure(self):
        engine = BatchEngine(EngineConfig(cache_size=2))
        report = engine.run_batch(
            [intra_request(64, 32, 48, b) for b in (1024, 2048, 4096)]
        )
        assert report.cache.evictions == 1
        assert report.cache.size == 2

    def test_cache_persistence(self, tmp_path):
        path = str(tmp_path / "cache.json")
        engine = BatchEngine()
        requests = _mixed_requests()
        cold = engine.run_batch(requests)
        saved = engine.save_cache(path)
        assert saved == len(engine.cache)
        fresh = BatchEngine()
        assert fresh.load_cache(path) == saved
        warm = fresh.run_batch(requests)
        assert warm.computed == 0
        assert warm.cache.hit_rate > 0.9
        assert warm.to_jsonl() == cold.to_jsonl()

    def test_process_pool_matches_serial(self):
        requests = [
            intra_request(64, 32, 48, 4096),
            sweep_point_request(96, 64, 80, 1024),
            intra_request(32, 32, 32, 2048),
        ]
        serial = BatchEngine().run_batch(requests)
        forked = BatchEngine(
            EngineConfig(jobs=2, executor="process")
        ).run_batch(requests)
        assert serial.to_jsonl() == forked.to_jsonl()

    def test_report_summary(self):
        report = BatchEngine().run_batch(_mixed_requests())
        summary = report.summary_dict()
        assert summary["requests"] == len(_mixed_requests())
        assert summary["errors"] == 0
        assert summary["wall_seconds"] >= 0
        text = report.render_text()
        assert "cache" in text and "pool" in text
        json.loads(report.to_json())  # valid JSON

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(jobs=0)
        with pytest.raises(ValueError):
            EngineConfig(cache_size=0)
        with pytest.raises(ValueError):
            EngineConfig(executor="rocket")


# ----------------------------------------------------------------------
# Shared intra-operator cache
# ----------------------------------------------------------------------
class TestIntraCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_intra_cache()
        yield
        clear_intra_cache()

    def test_matches_uncached(self):
        op = matmul("mm", 96, 64, 80)
        cached = cached_optimize_intra(op, 4096)
        direct = optimize_intra(op, 4096)
        assert cached.memory_access == direct.memory_access
        assert cached.dataflow == direct.dataflow

    def test_repeat_hits(self):
        op = matmul("mm", 96, 64, 80)
        cached_optimize_intra(op, 4096)
        cached_optimize_intra(op, 4096)
        stats = intra_cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_structural_sharing_rewrites_names(self):
        first = matmul("proj_q", 96, 64, 80)
        second = matmul("proj_k", 96, 64, 80)
        cached_optimize_intra(first, 4096)
        result = cached_optimize_intra(second, 4096)
        assert intra_cache_stats().hits == 1
        assert result.operator.name == "proj_k"
        assert all(
            name.startswith("proj_k.") for name in result.report.per_tensor
        )
        assert (
            result.memory_access
            == optimize_intra(second, 4096).memory_access
        )

    def test_signature_separates_shapes(self):
        assert operator_signature(matmul("a", 96, 64, 80)) == operator_signature(
            matmul("b", 96, 64, 80)
        )
        assert operator_signature(matmul("a", 96, 64, 80)) != operator_signature(
            matmul("a", 96, 64, 81)
        )

    def test_infeasible_not_cached(self):
        op = matmul("mm", 64, 32, 48)
        from repro.core import InfeasibleError

        with pytest.raises(InfeasibleError):
            cached_optimize_intra(op, 1)
        assert intra_cache_stats().size == 0
