"""Tests for the Principle records and Principle 4 predicate."""

import pytest

from repro.core import (
    optimal_nra_class,
    principle1,
    principle2,
    principle3,
    principle4,
    principle4_same_nra,
    regime_summary,
)
from repro.dataflow import NRAClass
from repro.ir import Tensor, matmul, rowwise_softmax


class TestPrincipleRecords:
    def test_numbers(self):
        op = matmul("mm", 64, 32, 48)
        assert principle1(op).number == 1
        assert principle2(op).number == 2
        assert principle3(op).number == 3
        assert principle4().number == 4

    def test_principle1_recommends_smallest_tensor(self):
        op = matmul("mm", 64, 32, 48)  # B = 32x48 = 1536 is smallest
        assert "mm.B" in principle1(op).recommendation

    def test_principle2_recommends_smallest_dim(self):
        op = matmul("mm", 64, 32, 48)
        assert "K" in principle2(op).recommendation

    def test_principle3_recommends_smallest_tensor(self):
        op = matmul("mm", 64, 32, 48)
        assert "mm.B" in principle3(op).recommendation

    def test_principle4_text(self):
        assert "same NRA" in principle4().scheduling_rule

    def test_regime_summary_mentions_regime(self):
        op = matmul("mm", 64, 32, 48)
        assert "tiny" in regime_summary(op, 100)


class TestOptimalNRAClass:
    def test_grows_with_buffer(self):
        op = matmul("mm", 64, 64, 64)
        tiny = optimal_nra_class(op, 200)
        large = optimal_nra_class(op, 10**6)
        assert tiny is NRAClass.SINGLE
        assert large is NRAClass.THREE

    def test_streaming_is_neutral(self):
        op = rowwise_softmax("sm", Tensor("x", (8, 8)))
        assert optimal_nra_class(op, 100) is None


class TestPrinciple4Predicate:
    def test_same_shape_same_class(self):
        op1 = matmul("mm1", 64, 64, 64)
        op2 = matmul("mm2", 64, 64, 64, a=op1.output)
        assert principle4_same_nra(op1, op2, 500)
        assert principle4_same_nra(op1, op2, 10**6)

    def test_different_classes_blocked(self):
        # op1 huge (tiny regime -> Single-NRA); op2's skinny output dim puts
        # it in the medium regime -> Two-NRA.
        op1 = matmul("mm1", 1024, 1024, 1024)
        op2 = matmul("mm2", 1024, 1024, 16, a=op1.output)
        budget = 4000
        class1 = optimal_nra_class(op1, budget)
        class2 = optimal_nra_class(op2, budget)
        assert class1 != class2
        assert not principle4_same_nra(op1, op2, budget)

    def test_streaming_never_blocks(self):
        op1 = matmul("mm1", 64, 32, 64)
        sm = rowwise_softmax("sm", op1.output)
        assert principle4_same_nra(op1, sm, 100)
        assert principle4_same_nra(sm, op1, 100)
