"""LatencyReservoir merging: the cross-shard aggregation primitive.

``/metrics`` on the sharded tier is only trustworthy if merging per-shard
reservoirs (a) keeps the exact counters exact, (b) stays within the
capacity bound, and (c) is deterministic -- merge the same states in the
same order, get the same percentiles, every time.
"""

from __future__ import annotations

import pytest

from repro.service import LatencyReservoir


def filled(values, capacity=512):
    reservoir = LatencyReservoir(capacity=capacity)
    reservoir.extend(values)
    return reservoir


class TestStateTransfer:
    def test_state_dict_round_trips(self):
        original = filled([0.1 * i for i in range(1, 40)], capacity=16)
        clone = LatencyReservoir.from_state(original.state_dict())
        assert clone.state_dict() == original.state_dict()
        assert clone.summary() == original.summary()

    def test_state_is_pure_json(self):
        import json

        state = filled([0.5, 1.5]).state_dict()
        assert json.loads(json.dumps(state)) == state


class TestMergeCounters:
    def test_exact_counters_add(self):
        a = filled([1.0, 2.0, 3.0])
        b = filled([10.0, 20.0])
        a.merge(b)
        summary = a.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx((1 + 2 + 3 + 10 + 20) / 5)
        assert summary["max"] == 20.0

    def test_merge_accepts_a_state_mapping(self):
        a = filled([1.0])
        a.merge(filled([2.0]).state_dict())
        assert a.summary()["count"] == 2

    def test_merge_empty_into_full_is_identity(self):
        a = filled([0.25 * i for i in range(1, 21)])
        before = a.summary()
        a.merge(LatencyReservoir())
        assert a.summary() == before

    def test_merge_full_into_empty_adopts_everything(self):
        b = filled([0.25 * i for i in range(1, 21)])
        a = LatencyReservoir()
        a.merge(b)
        assert a.summary() == b.summary()

    def test_merge_two_empties(self):
        a = LatencyReservoir()
        a.merge(LatencyReservoir())
        assert a.summary()["count"] == 0
        assert a.summary()["p50"] is None


class TestMergeBounds:
    def test_capacity_bound_holds_after_merging_unequal_sizes(self):
        a = filled([0.001 * i for i in range(3000)], capacity=64)
        b = filled([0.002 * i for i in range(7)], capacity=64)
        a.merge(b)
        state = a.state_dict()
        assert len(state["samples"]) < 64
        assert state["count"] == 3007

    def test_many_shards_merge_without_blowup(self):
        merged = LatencyReservoir(capacity=128)
        for shard in range(16):
            merged.merge(
                filled([0.01 * (shard + 1)] * 500, capacity=128)
            )
        state = merged.state_dict()
        assert state["count"] == 16 * 500
        assert len(state["samples"]) < 128

    def test_unequal_strides_decimate_to_the_coarser(self):
        # a has recorded enough to decimate several times; b has not.
        a = filled([0.001] * 5000, capacity=32)
        b = filled([1.0] * 10, capacity=32)
        stride_before = a.state_dict()["stride"]
        a.merge(b)
        assert a.state_dict()["stride"] >= stride_before


class TestMergeDeterminism:
    def test_same_inputs_same_order_same_summary(self):
        def build():
            merged = LatencyReservoir(capacity=64)
            for shard in range(4):
                merged.merge(
                    filled(
                        [0.01 * shard + 0.001 * i for i in range(200)],
                        capacity=64,
                    ).state_dict()
                )
            return merged.summary()

        assert build() == build()

    def test_percentiles_stay_plausible_after_merge(self):
        # Two shards with disjoint latency bands: the merged p50 must
        # land between the bands' medians, and p99 in the slow band.
        fast = filled([0.010 + 0.0001 * i for i in range(300)])
        slow = filled([1.000 + 0.0010 * i for i in range(300)])
        fast.merge(slow)
        summary = fast.summary()
        assert 0.010 <= summary["p50"] <= 1.4
        assert summary["p99"] >= 1.0
        assert summary["count"] == 600
