"""Unit tests for buffer-regime classification (paper Sec. III-A4)."""

import pytest
from hypothesis import given, settings

from conftest import mm_ops, buffer_sizes
from repro.core import BufferRegime, classify_buffer
from repro.dataflow import NRAClass
from repro.ir import matmul


class TestRegimeBoundaries:
    """Dmin = 64 -> tiny <= 1024 < small <= 2048 < medium <= Tensor_min."""

    def setup_method(self):
        self.op = matmul("mm", 128, 64, 256)  # Dmin=64, Tensor_min=A=8192

    def test_tiny(self):
        assert classify_buffer(self.op, 1024).regime is BufferRegime.TINY

    def test_small_lower_edge(self):
        assert classify_buffer(self.op, 1025).regime is BufferRegime.SMALL

    def test_small_upper_edge(self):
        assert classify_buffer(self.op, 2048).regime is BufferRegime.SMALL

    def test_medium(self):
        assert classify_buffer(self.op, 2049).regime is BufferRegime.MEDIUM
        assert classify_buffer(self.op, 8192).regime is BufferRegime.MEDIUM

    def test_large(self):
        assert classify_buffer(self.op, 8193).regime is BufferRegime.LARGE

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            classify_buffer(self.op, 0)

    def test_report_fields(self):
        report = classify_buffer(self.op, 4096)
        assert report.d_min == 64
        assert report.tensor_min == 128 * 64
        assert report.buffer_elems == 4096


class TestRegimeCandidates:
    def test_candidate_classes(self):
        op = matmul("mm", 128, 64, 256)
        assert classify_buffer(op, 100).candidates == (NRAClass.SINGLE,)
        assert classify_buffer(op, 1500).candidates == (
            NRAClass.SINGLE,
            NRAClass.TWO,
        )
        assert classify_buffer(op, 4096).candidates == (NRAClass.TWO,)
        assert classify_buffer(op, 100000).candidates == (NRAClass.THREE,)


class TestRegimeMonotonicity:
    @given(mm_ops(max_dim=64), buffer_sizes())
    @settings(max_examples=60, deadline=None)
    def test_growing_buffer_never_lowers_regime(self, op, buffer_elems):
        order = [
            BufferRegime.TINY,
            BufferRegime.SMALL,
            BufferRegime.MEDIUM,
            BufferRegime.LARGE,
        ]
        small = classify_buffer(op, buffer_elems).regime
        big = classify_buffer(op, buffer_elems * 2).regime
        assert order.index(big) >= order.index(small)

    def test_paper_example_regime(self):
        """Sec. III-A4 example: BERT MM at 512 KB is medium -> Two-NRA."""
        op = matmul("bert", 1024, 768, 768)
        report = classify_buffer(op, 512 * 1024)
        assert report.regime is BufferRegime.MEDIUM
        assert report.candidates == (NRAClass.TWO,)
