"""CLI surface of the sharded tier + the bench subcommand.

The subprocess tests exercise the real multi-process daemon contract:
``repro serve --shards N`` boots a fleet, prints the parseable
"listening on" line plus a "shard pids" line (the CI smoke step kills
one of those pids), serves ``repro call`` byte-identically to ``repro
batch``, and drains losslessly on SIGTERM.  The bench tests pin the
``BENCH_<date>.json`` schema that the committed baseline follows.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.bench import BENCH_SCHEMA_VERSION, run_bench
from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

REQUEST_LINES = [
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {"kind": "fusion", "m": 96, "k": 64, "l": 80, "n": 72,
     "buffer_elems": 16384},
    {"kind": "sweep_point", "m": 32, "k": 32, "l": 32, "buffer_elems": 1024},
    {"kind": "intra", "m": 40, "k": 24, "l": 56, "buffer_elems": 8192},
]


def _write_requests(path):
    path.write_text(
        "\n".join(json.dumps(line) for line in REQUEST_LINES) + "\n",
        encoding="utf-8",
    )


def _clean_env(extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    if extra_env:
        env.update(extra_env)
    return env


def _spawn_sharded(tmp_path, shards, extra_args=(), extra_env=None):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--shards", str(shards),
         "--journal", str(tmp_path / "serve.journal"),
         *extra_args],
        stderr=subprocess.PIPE,
        env=_clean_env(extra_env),
        text=True,
    )
    # Shard boot progress lines ("shard-N ready ...") precede the
    # startup contract line; scan until it appears.
    seen = []
    while True:
        line = process.stderr.readline()
        assert line, f"server exited before listening: {seen}"
        seen.append(line)
        if "listening on" in line:
            break
    assert f"shards={shards}" in line, line
    url = next(
        token for token in line.split() if token.startswith("http://")
    )
    pid_line = process.stderr.readline()
    assert "shard pids" in pid_line, pid_line
    pids = [int(tok) for tok in pid_line.split("pids", 1)[1].split()]
    assert len(pids) == shards
    return process, url, pids


def _run_call(url, requests_path, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "call", str(requests_path),
         "--url", url],
        capture_output=True,
        text=True,
        env=_clean_env(),
        timeout=timeout,
    )


class TestServeSharded:
    def test_sharded_serve_is_byte_identical_to_batch(
        self, tmp_path, capsys
    ):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        process, url, pids = _spawn_sharded(tmp_path, 2)
        try:
            call = _run_call(url, requests)
            process.send_signal(signal.SIGTERM)
            _, serve_err = process.communicate(timeout=120)
        finally:
            process.kill()
        assert call.returncode == 0, call.stderr
        assert process.returncode == 0, serve_err
        assert "drained and stopped" in serve_err
        assert main(["batch", str(requests)]) == 0
        assert call.stdout == capsys.readouterr().out
        # The pid line advertised real, distinct worker processes.
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_killed_shard_respawns_and_call_still_succeeds(self, tmp_path):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        process, url, pids = _spawn_sharded(tmp_path, 3)
        try:
            warmup = _run_call(url, requests)
            os.kill(pids[0], signal.SIGKILL)
            after = _run_call(url, requests)
            process.send_signal(signal.SIGTERM)
            _, serve_err = process.communicate(timeout=120)
        finally:
            process.kill()
        assert warmup.returncode == 0, warmup.stderr
        assert after.returncode == 0, after.stderr
        assert after.stdout == warmup.stdout
        assert process.returncode == 0, serve_err

    def test_shards_flag_rejects_negative(self, capsys):
        assert main(["serve", "--port", "0", "--shards", "-1"]) == 2
        assert "shards" in capsys.readouterr().err


class TestBench:
    def test_run_bench_structure(self):
        report = run_bench(repeats=1, batch_requests=4, jobs=1)
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert report["machine"]["python"]
        for section in ("optimize_intra", "optimize_fused"):
            assert report[section], f"{section} timed nothing"
            for shape, entry in report[section].items():
                assert "x" in shape
                assert entry["median_seconds"] > 0
                assert entry["min_seconds"] <= entry["median_seconds"]
        batch = report["batch"]
        assert batch["requests"] == 4
        assert batch["requests_per_second"] > 0
        assert batch["wall_seconds"] > 0
        # The trend file must be diffable: pure JSON, date-stamped.
        assert json.loads(json.dumps(report)) == report
        assert len(report["date"]) == 10  # ISO YYYY-MM-DD

    def test_bench_cli_writes_the_trend_file(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert (
            main(["bench", "--repeats", "1", "--batch-requests", "4",
                  "--jobs", "1", "--output", str(output)])
            == 0
        )
        err = capsys.readouterr().err
        assert "req/s" in err
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert report["batch"]["requests"] == 4

    def test_bench_cli_stdout_mode(self, capsys):
        assert (
            main(["bench", "--repeats", "1", "--batch-requests", "2",
                  "--jobs", "1", "--output", "-"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == BENCH_SCHEMA_VERSION

    def test_bench_rejects_bad_knobs(self, capsys):
        assert main(["bench", "--repeats", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err
