"""Tests for the ``dag_plan`` request kind through the service stack."""

import json

import pytest

from repro.service import (
    PARANOID_KINDS,
    REQUEST_KINDS,
    BatchEngine,
    EngineConfig,
    RequestError,
    apply_paranoid,
    dag_plan_request,
    execute_request,
    parse_request,
    request_key,
    run_payload,
)


def _strip(record):
    record = dict(record)
    record.pop("seconds", None)
    return record


class TestDagPlanRequests:
    def test_kind_registered(self):
        assert "dag_plan" in REQUEST_KINDS
        assert "dag_plan" in PARANOID_KINDS

    def test_constructor_matches_parse(self):
        built = dag_plan_request("attention", 4096, baseline=True)
        parsed = parse_request(
            {
                "kind": "dag_plan",
                "scenario": "attention",
                "buffer_elems": 4096,
                "baseline": True,
            }
        )
        assert request_key(built) == request_key(parsed)

    def test_nested_params_form_equivalent(self):
        flat = parse_request(
            {"kind": "dag_plan", "scenario": "moe", "buffer_elems": 4096}
        )
        nested = parse_request(
            {
                "kind": "dag_plan",
                "params": {"scenario": "moe", "buffer_elems": 4096},
            }
        )
        assert request_key(flat) == request_key(nested)

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "dag_plan"},  # missing scenario + buffer
            {"kind": "dag_plan", "scenario": "attention"},
            {"kind": "dag_plan", "scenario": 7, "buffer_elems": 4096},
            {"kind": "dag_plan", "scenario": "attention",
             "buffer_elems": 4096, "bogus": 1},
        ],
    )
    def test_malformed_requests_raise(self, payload):
        with pytest.raises(RequestError):
            parse_request(payload)

    def test_paranoid_changes_key(self):
        base = dag_plan_request("attention", 4096)
        paranoid = apply_paranoid(base)
        assert paranoid.param_dict["paranoid"] is True
        assert request_key(base) != request_key(paranoid)


class TestDagPlanExecution:
    def test_record_shape(self):
        record = execute_request(
            dag_plan_request("attention", 4096, baseline=True)
        )
        assert record["scenario"] == "attention"
        assert record["buffer_elems"] == 4096
        assert record["graph"]
        assert record["total_memory_access"] >= record["ideal_memory_access"]
        assert record["total_memory_access"] <= record["chain_memory_access"]
        assert record["total_memory_access"] == sum(
            segment["memory_access"] for segment in record["segments"]
        )
        baseline = record["baseline"]
        assert baseline["agrees"] is True
        assert baseline["exhausted"] is True
        assert baseline["total_memory_access"] is not None
        assert record["total_memory_access"] <= baseline["total_memory_access"]

    def test_record_is_pure_json_and_deterministic(self):
        payload = {
            "kind": "dag_plan",
            "scenario": "decode",
            "buffer_elems": 4096,
            "baseline": True,
        }
        first = _strip(run_payload(payload))
        second = _strip(run_payload(payload))
        assert first["ok"] and second["ok"]
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_certify_attaches_certificate(self):
        record = execute_request(dag_plan_request("moe", 4096, certify=True))
        certification = record["certification"]
        assert certification["ok"] is True
        names = {check["name"] for check in certification["checks"]}
        assert {"cover", "topology", "cost_audit", "bound"} <= names

    def test_paranoid_certifies_with_probe(self):
        record = execute_request(
            dag_plan_request("attention", 4096, paranoid=True)
        )
        certification = record["certification"]
        assert certification["ok"] is True
        names = {check["name"] for check in certification["checks"]}
        assert "optimality_probe" in names

    def test_unknown_scenario_is_permanent(self):
        record = run_payload(
            {"kind": "dag_plan", "scenario": "nope", "buffer_elems": 4096}
        )
        assert record["ok"] is False
        assert record["error"]["category"] == "permanent"

    def test_unknown_model_is_permanent(self):
        record = run_payload(
            {
                "kind": "dag_plan",
                "scenario": "attention",
                "buffer_elems": 4096,
                "model": "nope",
            }
        )
        assert record["ok"] is False
        assert record["error"]["category"] == "permanent"


class TestDagPlanBatch:
    def _requests(self):
        from repro.plan import SCENARIO_BUFFERS, list_scenarios

        return [
            dag_plan_request(scenario, buffer_elems, baseline=True)
            for scenario in list_scenarios()
            for buffer_elems in SCENARIO_BUFFERS
        ]

    def test_jobs_invariant_byte_identity(self):
        requests = self._requests()
        serial = BatchEngine(EngineConfig(jobs=1)).run_batch(requests)
        threaded = BatchEngine(EngineConfig(jobs=2)).run_batch(requests)
        assert serial.errors == threaded.errors == 0
        serial_lines = [
            json.dumps(_strip(e.record), sort_keys=True)
            for e in serial.entries
        ]
        threaded_lines = [
            json.dumps(_strip(e.record), sort_keys=True)
            for e in threaded.entries
        ]
        assert serial_lines == threaded_lines

    def test_acceptance_matrix_served(self):
        """All 8 scenario/buffer cells agree with the baseline when served."""
        report = BatchEngine(EngineConfig(jobs=2)).run_batch(self._requests())
        assert report.errors == 0
        for entry in report.entries:
            result = entry.record["result"]
            assert result["baseline"]["agrees"] is True, result["scenario"]

    def test_cache_answers_repeat(self):
        request = dag_plan_request("attention", 4096)
        engine = BatchEngine(EngineConfig(jobs=1, cache_size=8))
        engine.run_batch([request])
        report = engine.run_batch([request])
        assert report.cache.hits >= 1
        assert report.cached_answers == 1
