"""Unit tests for repro.dataflow.scheduling."""

import pytest

from repro.dataflow import (
    Schedule,
    ScheduleError,
    Tiling,
    all_schedules,
    input_stationary,
    output_stationary,
    stationary_schedule,
)
from repro.ir import matmul


class TestScheduleBasics:
    def test_order_preserved(self):
        assert Schedule(("M", "L", "K")).order == ("M", "L", "K")

    def test_duplicate_dim_rejected(self):
        with pytest.raises(ScheduleError, match="repeats"):
            Schedule(("M", "M", "K"))

    def test_validate_coverage(self):
        op = matmul("mm", 4, 5, 6)
        with pytest.raises(ScheduleError, match="cover"):
            Schedule(("M", "K")).validate(op)

    def test_innermost_outermost(self):
        schedule = Schedule(("M", "L", "K"))
        assert schedule.innermost == "K"
        assert schedule.outermost == "M"

    def test_all_schedules_count(self):
        op = matmul("mm", 4, 5, 6)
        assert len(list(all_schedules(op))) == 6


class TestStationaryDerivation:
    def test_output_stationary_reduction_innermost(self):
        op = matmul("mm", 4, 5, 6)
        schedule = output_stationary(op)
        assert schedule.innermost == "K"

    def test_output_stationary_tensor_is_c(self):
        op = matmul("mm", 4, 5, 6)
        schedule = output_stationary(op)
        tiling = Tiling({"M": 2, "K": 1, "L": 2})
        assert schedule.stationary_tensor(op, tiling).name == "mm.C"

    def test_input_stationary_tensor_is_a(self):
        op = matmul("mm", 4, 5, 6)
        schedule = input_stationary(op, "mm.A")
        tiling = Tiling({"M": 2, "K": 2, "L": 1})
        assert schedule.stationary_tensor(op, tiling).name == "mm.A"

    def test_weight_stationary_tensor_is_b(self):
        op = matmul("mm", 4, 5, 6)
        schedule = stationary_schedule(op, "mm.B")
        tiling = Tiling({"M": 1, "K": 2, "L": 2})
        assert schedule.stationary_tensor(op, tiling).name == "mm.B"

    def test_effective_order_drops_untiled(self):
        op = matmul("mm", 4, 5, 6)
        schedule = Schedule(("M", "L", "K"))
        tiling = Tiling({"M": 2, "K": 5, "L": 2})
        assert schedule.effective_order(op, tiling) == ("M", "L")

    def test_fully_buffered_has_no_stationary(self):
        op = matmul("mm", 4, 5, 6)
        schedule = Schedule(("M", "L", "K"))
        tiling = Tiling({"M": 4, "K": 5, "L": 6})
        assert schedule.stationary_tensor(op, tiling) is None

    def test_output_stationary_needs_reduction(self):
        from repro.ir import Tensor, elementwise

        op = elementwise("ew", Tensor("x", (4, 5)))
        with pytest.raises(ScheduleError, match="reduction"):
            output_stationary(op)

    def test_input_stationary_all_dims_rejected(self):
        from repro.ir import Tensor, elementwise

        op = elementwise("ew", Tensor("x", (4, 5)))
        with pytest.raises(ScheduleError, match="every dim"):
            input_stationary(op, op.inputs[0].name)
