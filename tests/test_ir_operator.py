"""Unit tests for repro.ir.operator."""

import pytest
from hypothesis import given

from conftest import mm_dims
from repro.ir import (
    OperatorError,
    Tensor,
    TensorOperator,
    batched_matmul,
    elementwise,
    matmul,
    rowwise_softmax,
)


class TestMatmulConstruction:
    def test_dims(self):
        op = matmul("mm", 4, 5, 6)
        assert op.dims == {"M": 4, "K": 5, "L": 6}

    def test_tensor_shapes(self):
        op = matmul("mm", 4, 5, 6)
        assert op.inputs[0].shape == (4, 5)
        assert op.inputs[1].shape == (5, 6)
        assert op.output.shape == (4, 6)

    def test_indexing(self):
        op = matmul("mm", 4, 5, 6)
        assert op.dims_of(op.inputs[0].name) == ("M", "K")
        assert op.dims_of(op.inputs[1].name) == ("K", "L")
        assert op.dims_of(op.output.name) == ("M", "L")

    def test_reduction_dim(self):
        op = matmul("mm", 4, 5, 6)
        assert op.reduction_dims == frozenset({"K"})

    def test_shared_tensor_for_chains(self):
        op1 = matmul("mm1", 4, 5, 6)
        op2 = matmul("mm2", 4, 6, 3, a=op1.output)
        assert op2.inputs[0] is op1.output

    def test_mismatched_tensor_rejected(self):
        wrong = Tensor("x", (9, 9))
        with pytest.raises(OperatorError, match="shape"):
            matmul("mm", 4, 5, 6, a=wrong)

    def test_default_tensor_names(self):
        op = matmul("mm", 4, 5, 6)
        assert {t.name for t in op.tensors} == {"mm.A", "mm.B", "mm.C"}


class TestOperatorValidation:
    def test_zero_dim_rejected(self):
        # The tensor constructor rejects the zero extent first; a handcrafted
        # operator with a zero loop dim is caught by the operator itself.
        with pytest.raises(ValueError):
            matmul("mm", 0, 5, 6)
        a = Tensor("a", (4, 5))
        c = Tensor("c", (4, 5))
        with pytest.raises(OperatorError, match="extent"):
            TensorOperator(
                name="bad",
                dims={"M": 4, "K": 5, "Z": 0},
                inputs=(a,),
                output=c,
                indexing={"a": ("M", "K"), "c": ("M", "K")},
            )

    def test_zero_count_rejected(self):
        with pytest.raises(OperatorError, match="count"):
            matmul("mm", 4, 5, 6, count=0)

    def test_duplicate_tensor_names_rejected(self):
        a = Tensor("same", (4, 5))
        b = Tensor("same", (5, 6))
        with pytest.raises(OperatorError, match="duplicate"):
            matmul("mm", 4, 5, 6, a=a, b=b)

    def test_reduction_dim_must_not_index_output(self):
        a = Tensor("a", (4, 5))
        c = Tensor("c", (4, 5))
        with pytest.raises(OperatorError, match="reduction"):
            TensorOperator(
                name="bad",
                dims={"M": 4, "K": 5},
                inputs=(a,),
                output=c,
                indexing={"a": ("M", "K"), "c": ("M", "K")},
                reduction_dims=frozenset({"K"}),
            )

    def test_unknown_indexing_dim_rejected(self):
        a = Tensor("a", (4, 5))
        c = Tensor("c", (4, 5))
        with pytest.raises(OperatorError, match="unknown dim"):
            TensorOperator(
                name="bad",
                dims={"M": 4, "K": 5},
                inputs=(a,),
                output=c,
                indexing={"a": ("M", "Z"), "c": ("M", "K")},
            )

    def test_extent_mismatch_rejected(self):
        a = Tensor("a", (4, 6))
        c = Tensor("c", (4, 5))
        with pytest.raises(OperatorError, match="extent"):
            TensorOperator(
                name="bad",
                dims={"M": 4, "K": 5},
                inputs=(a,),
                output=c,
                indexing={"a": ("M", "K"), "c": ("M", "K")},
            )


class TestOperatorQueries:
    def test_macs(self):
        assert matmul("mm", 4, 5, 6).macs == 120

    def test_macs_with_count(self):
        assert matmul("mm", 4, 5, 6, count=3).macs == 360

    def test_flops_are_two_per_mac(self):
        assert matmul("mm", 4, 5, 6).flops == 240

    def test_smallest_dim(self):
        assert matmul("mm", 10, 3, 6).smallest_dim == "K"

    def test_smallest_tensor(self):
        op = matmul("mm", 10, 3, 6)
        assert op.smallest_tensor is op.inputs[1]  # B is 3x6 = 18

    def test_ideal_memory_access(self):
        op = matmul("mm", 4, 5, 6)
        assert op.ideal_memory_access() == 4 * 5 + 5 * 6 + 4 * 6

    def test_ideal_memory_access_scales_with_count(self):
        assert (
            matmul("mm", 4, 5, 6, count=2).ideal_memory_access()
            == 2 * matmul("mm", 4, 5, 6).ideal_memory_access()
        )

    def test_tensors_with_dim(self):
        op = matmul("mm", 4, 5, 6)
        names = {t.name for t in op.tensors_with_dim("K")}
        assert names == {"mm.A", "mm.B"}

    def test_tensor_lookup_missing(self):
        with pytest.raises(KeyError):
            matmul("mm", 4, 5, 6).tensor("nope")

    @given(mm_dims())
    def test_iteration_space(self, dims):
        m, k, l = dims
        assert matmul("mm", m, k, l).iteration_space == m * k * l


class TestElementwiseAndSoftmax:
    def test_elementwise_shapes(self):
        source = Tensor("x", (4, 6))
        op = elementwise("relu", source)
        assert op.output.shape == (4, 6)
        assert op.dims == {"E0": 4, "E1": 6}

    def test_elementwise_no_reduction(self):
        op = elementwise("relu", Tensor("x", (4, 6)))
        assert not op.reduction_dims

    def test_elementwise_output_shape_checked(self):
        with pytest.raises(OperatorError, match="shape"):
            elementwise("relu", Tensor("x", (4, 6)), output=Tensor("y", (6, 4)))

    def test_softmax_requires_rank2(self):
        with pytest.raises(OperatorError, match="rank-2"):
            rowwise_softmax("sm", Tensor("x", (4,)))

    def test_softmax_chains_with_matmul(self):
        mm = matmul("mm", 4, 5, 6)
        sm = rowwise_softmax("sm", mm.output)
        assert sm.inputs[0] is mm.output

    def test_batched_matmul_is_count(self):
        op = batched_matmul("bmm", 8, 4, 5, 6)
        assert op.count == 8
        assert op.macs == 8 * 4 * 5 * 6
