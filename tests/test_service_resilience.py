"""Tests for the service resilience layer.

Covers the error taxonomy, retry/deadline/breaker policies, graceful
executor degradation, crash-safe cache persistence, and the deterministic
fault-injection harness that proves each failure mode end to end.
"""

import json
import os

import pytest

from repro.core import InfeasibleError
from repro.service import (
    CACHE_SCHEMA_VERSION,
    PERMANENT,
    TRANSIENT,
    BatchEngine,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    EngineConfig,
    FaultSpecError,
    InjectedFaultError,
    RequestError,
    RetryPolicy,
    WorkerCrashError,
    classify_error_name,
    classify_exception,
    injected_faults,
    intra_request,
    parse_fault_spec,
    record_category,
    request_key,
    reset_fault_state,
    sweep_point_request,
)


@pytest.fixture(autouse=True)
def _isolated_fault_state(monkeypatch):
    """No fault plan (or leaked REPRO_FAULTS) bleeds between tests."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestTaxonomy:
    @pytest.mark.parametrize(
        "exc, category",
        [
            (InfeasibleError("no tiling fits"), PERMANENT),
            (RequestError("bad request"), PERMANENT),
            (KeyError("unknown model"), PERMANENT),
            (DeadlineExceededError("too slow"), TRANSIENT),
            (WorkerCrashError("boom"), TRANSIENT),
            (TimeoutError("pool timeout"), TRANSIENT),
            (InjectedFaultError("x", category=TRANSIENT), TRANSIENT),
            (InjectedFaultError("x", category=PERMANENT), PERMANENT),
        ],
    )
    def test_classify_exception(self, exc, category):
        assert classify_exception(exc) == category

    def test_classify_by_name(self):
        assert classify_error_name("BrokenProcessPool") == TRANSIENT
        assert classify_error_name("DeadlineExceededError") == TRANSIENT
        assert classify_error_name("KeyError") == PERMANENT
        assert classify_error_name(None) == PERMANENT

    def test_record_category(self):
        assert record_category({"ok": True, "result": {}}) is None
        explicit = {"ok": False, "error": {"type": "X", "category": TRANSIENT}}
        assert record_category(explicit) == TRANSIENT
        # Legacy records (no category field) classify by type name.
        legacy = {"ok": False, "error": {"type": "WorkerCrashError"}}
        assert record_category(legacy) == TRANSIENT
        assert record_category({"ok": False, "error": {"type": "ValueError"}}) == PERMANENT


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)

    def test_should_retry_only_transient_with_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(TRANSIENT, 1)
        assert policy.should_retry(TRANSIENT, 2)
        assert not policy.should_retry(TRANSIENT, 3)
        assert not policy.should_retry(PERMANENT, 1)
        assert not policy.should_retry(None, 1)

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, max_delay=0.35, jitter=0.5
        )
        first = policy.delay_for(2, key="abc")
        assert first == policy.delay_for(2, key="abc")  # deterministic
        assert 0.1 <= first <= 0.15
        # Jitter decorrelates across keys.
        assert first != policy.delay_for(2, key="other-key")
        # Exponential growth, capped.
        assert policy.delay_for(4, key="abc") <= 0.35
        assert policy.delay_for(1, key="abc") == 0.0

    def test_sleep_injectable(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.25, sleep=slept.append
        )
        policy.backoff(2, key="k")
        assert len(slept) == 1 and slept[0] >= 0.25
        policy.backoff(1, key="k")  # first attempt: no delay, no sleep
        assert len(slept) == 1


class TestDeadline:
    def test_unlimited(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check()  # never raises

    def test_expiry(self):
        deadline = Deadline(0.0001)
        while not deadline.expired():
            pass
        with pytest.raises(DeadlineExceededError):
            deadline.check("unit test")

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0)


class TestCircuitBreaker:
    def test_disabled_by_default(self):
        breaker = CircuitBreaker(0)
        for _ in range(10):
            breaker.record_failure("intra", PERMANENT)
        assert not breaker.is_open("intra")

    def test_trips_on_consecutive_permanent(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure("intra", PERMANENT)
        assert not breaker.is_open("intra")
        breaker.record_failure("intra", PERMANENT)
        assert breaker.is_open("intra")
        assert not breaker.is_open("fusion")
        assert breaker.snapshot() == {"intra": 2}

    def test_transient_failures_do_not_count(self):
        breaker = CircuitBreaker(1)
        breaker.record_failure("intra", TRANSIENT)
        assert not breaker.is_open("intra")

    def test_success_closes(self):
        breaker = CircuitBreaker(1)
        breaker.record_failure("intra", PERMANENT)
        assert breaker.is_open("intra")
        breaker.record_success("intra")
        assert not breaker.is_open("intra")


# ----------------------------------------------------------------------
# Fault spec grammar
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_clause_fields(self):
        plan = parse_fault_spec(
            "raise:intra*:times=2:category=permanent;"
            "delay:sweep_point:seconds=0.5:hard=1;"
            "corrupt:ab12*"
        )
        first, second, third = plan.clauses
        assert (first.action, first.pattern, first.times) == (
            "raise", "intra*", 2
        )
        assert first.category == PERMANENT
        assert (second.action, second.seconds, second.hard) == (
            "delay", 0.5, True
        )
        assert (third.action, third.times) == ("corrupt", None)

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "explode:*",
            "raise",
            "raise:*:times=zero",
            "raise:*:category=sideways",
            "raise:*:times=0",
            "delay:*:seconds=-1",
            "raise:*:p=1.5",
            "raise:*:nonsense=1",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_matches_kind_and_key(self):
        plan = parse_fault_spec("raise:intra")
        clause = plan.clauses[0]
        assert clause.matches("intra", "abcd" * 16)
        assert not clause.matches("fusion", "abcd" * 16)
        key_plan = parse_fault_spec("raise:abcd*")
        assert key_plan.clauses[0].matches("intra", "abcd" * 16)

    def test_probability_is_deterministic_per_key(self):
        clause = parse_fault_spec("raise:*:p=0.5:seed=7").clauses[0]
        keys = [f"key-{i}" for i in range(64)]
        first = [clause.matches("intra", key) for key in keys]
        second = [clause.matches("intra", key) for key in keys]
        assert first == second
        assert any(first) and not all(first)  # p=0.5 splits the keys

    def test_times_budget_per_key(self):
        plan = parse_fault_spec("raise:*:times=1")
        with pytest.raises(InjectedFaultError):
            plan.apply("intra", "key-a")
        plan.apply("intra", "key-a")  # budget for key-a spent
        with pytest.raises(InjectedFaultError):
            plan.apply("intra", "key-b")  # fresh budget per key


# ----------------------------------------------------------------------
# Engine resilience end to end (via fault injection)
# ----------------------------------------------------------------------
def _requests():
    return [
        intra_request(64, 32, 48, 4096),
        sweep_point_request(96, 64, 80, 1024),
        intra_request(32, 32, 32, 2048),
    ]


class TestEngineResilience:
    def test_transient_fault_retried_to_success(self):
        with injected_faults("raise:intra*:times=1:category=transient"):
            engine = BatchEngine(EngineConfig(jobs=1, max_attempts=2))
            report = engine.run_batch(_requests())
        assert all(entry.ok for entry in report.entries)
        assert report.resilience["retries"] == 2  # two intra requests
        assert report.counters["retries"] == 2

    def test_permanent_fault_not_retried(self):
        with injected_faults("raise:intra*:category=permanent"):
            engine = BatchEngine(EngineConfig(jobs=1, max_attempts=3))
            report = engine.run_batch([intra_request(64, 32, 48, 4096)])
        error = report.entries[0].record["error"]
        assert error["type"] == "InjectedFaultError"
        assert error["category"] == PERMANENT
        assert "retries" not in report.resilience

    def test_retry_budget_exhausted_keeps_structured_error(self):
        with injected_faults("raise:intra*:category=transient"):
            engine = BatchEngine(EngineConfig(jobs=1, max_attempts=2))
            report = engine.run_batch([intra_request(64, 32, 48, 4096)])
        error = report.entries[0].record["error"]
        assert error["category"] == TRANSIENT
        assert report.resilience["retries"] == 1

    def test_corrupt_result_detected_and_retried(self):
        with injected_faults("corrupt:intra*:times=1"):
            engine = BatchEngine(EngineConfig(jobs=1, max_attempts=2))
            report = engine.run_batch([intra_request(64, 32, 48, 4096)])
        assert report.entries[0].ok
        assert report.resilience["corrupt_results"] == 1
        assert report.resilience["retries"] == 1

    def test_cooperative_deadline_serial_and_thread(self):
        for config in (
            EngineConfig(jobs=1, deadline_seconds=0.05),
            EngineConfig(jobs=2, deadline_seconds=0.05),
        ):
            with injected_faults("delay:intra*:seconds=1.0"):
                report = BatchEngine(config).run_batch(_requests())
            oks = [entry.ok for entry in report.entries]
            assert oks == [False, True, False]
            error = report.entries[0].record["error"]
            assert error["type"] == "DeadlineExceededError"
            assert error["category"] == TRANSIENT
            assert report.resilience["timeouts"] == 2

    def test_transient_errors_never_cached(self):
        requests = [intra_request(64, 32, 48, 4096)]
        engine = BatchEngine(EngineConfig(jobs=1))
        with injected_faults("raise:intra*:category=transient"):
            faulty = engine.run_batch(requests)
        assert not faulty.entries[0].ok
        # Same engine, faults gone: the request recomputes and succeeds
        # (a cached transient error would wrongly replay the failure).
        clean = engine.run_batch(requests)
        assert clean.entries[0].ok
        assert clean.computed == 1

    def test_permanent_errors_still_cached(self):
        engine = BatchEngine(EngineConfig(jobs=1))
        requests = [intra_request(64, 32, 48, 1)]  # infeasible buffer
        engine.run_batch(requests)
        warm = engine.run_batch(requests)
        assert warm.computed == 0
        assert warm.entries[0].record["error"]["type"] == "InfeasibleError"

    def test_breaker_fast_fails_after_threshold(self):
        bad = [
            {"kind": "graph_plan", "model": "NotAModel",
             "buffer_elems": 1000 + i}
            for i in range(4)
        ]
        engine = BatchEngine(EngineConfig(jobs=1, breaker_threshold=2))
        report = engine.run_batch(bad + [intra_request(64, 32, 48, 4096)])
        types = [
            entry.record.get("error", {}).get("type")
            for entry in report.entries
        ]
        # Two failures trip the breaker; the third probes (and fails),
        # the fourth fails fast; the intra request is unaffected.
        assert types == [
            "KeyError", "KeyError", "KeyError", "CircuitOpenError", None
        ]
        assert report.resilience["breaker_fastfail"] == 1
        assert report.entries[3].record["error"]["category"] == PERMANENT

    def test_breaker_open_records_not_cached(self):
        engine = BatchEngine(EngineConfig(jobs=1, breaker_threshold=1))
        trip = {"kind": "graph_plan", "model": "NotAModel",
                "buffer_elems": 999}
        victim = {"kind": "graph_plan", "model": "NotAModel",
                  "buffer_elems": 998}
        first = engine.run_batch([trip, trip | {"buffer_elems": 997}, victim])
        assert (
            first.entries[2].record["error"]["type"] == "CircuitOpenError"
        )
        # The victim's fast-fail is not a cached answer: once the breaker
        # closes, the real (deterministic) error computes normally.
        engine.breaker.record_success("graph_plan")
        second = engine.run_batch([victim])
        assert second.entries[0].record["error"]["type"] == "KeyError"

    def test_deterministic_across_executors_under_faults(self):
        """Acceptance: raise + delay + crash, byte-identical everywhere."""
        requests = _requests()
        spec = (
            f"raise:{request_key(requests[1])[:16]}*:category=permanent;"
            "delay:intra:seconds=0.01;"
            f"crash:{request_key(requests[2])[:16]}*:times=1"
        )
        outputs = []
        reports = []
        for config in (
            EngineConfig(jobs=1, max_attempts=2),
            EngineConfig(jobs=3, max_attempts=2),
            EngineConfig(jobs=2, executor="process", max_attempts=2),
        ):
            with injected_faults(spec, export_env=True):
                report = BatchEngine(config).run_batch(requests)
            outputs.append(report.to_jsonl())
            reports.append(report)
        assert outputs[0] == outputs[1] == outputs[2]
        records = [json.loads(line) for line in outputs[0].splitlines()]
        assert [r["index"] for r in records] == [0, 1, 2]
        assert [r["ok"] for r in records] == [True, False, True]
        # The process run lost its pool to the crash and degraded.
        assert reports[2].degradations
        assert reports[2].resilience["degradations"] >= 1

    def test_fallback_disabled_synthesizes_pool_errors(self):
        requests = _requests()
        spec = f"crash:{request_key(requests[0])[:16]}*"
        with injected_faults(spec, export_env=True):
            engine = BatchEngine(
                EngineConfig(jobs=2, executor="process", fallback=False)
            )
            report = engine.run_batch(requests)
        assert report.requests == len(requests)
        assert not report.degradations
        failed = [e for e in report.entries if not e.ok]
        assert failed
        assert all(
            e.record["error"]["type"] == "PoolBrokenError" for e in failed
        )


# ----------------------------------------------------------------------
# Process executor: spawn start method + BrokenProcessPool fallback
# ----------------------------------------------------------------------
class TestProcessPoolResilience:
    def test_broken_pool_degrades_and_completes(self):
        requests = _requests()
        spec = f"crash:{request_key(requests[1])[:16]}*:times=1"
        with injected_faults(spec, export_env=True):
            engine = BatchEngine(
                EngineConfig(jobs=2, executor="process", max_attempts=2)
            )
            report = engine.run_batch(requests)
        assert [entry.ok for entry in report.entries] == [True, True, True]
        assert report.degradations[0]["from"] == "process"
        assert report.degradations[0]["to"] == "thread"
        serial = BatchEngine().run_batch(requests)
        assert report.to_jsonl() == serial.to_jsonl()

    def test_spawn_start_method_matches_serial(self):
        """The CI-default start method on py3.12+/macOS-like configs."""
        requests = _requests()
        engine = BatchEngine(
            EngineConfig(jobs=2, executor="process", start_method="spawn")
        )
        report = engine.run_batch(requests)
        assert not report.degradations  # spawn pool genuinely worked
        serial = BatchEngine().run_batch(requests)
        assert report.to_jsonl() == serial.to_jsonl()

    def test_spawn_workers_inherit_fault_plan_via_env(self):
        """Fault plans reach spawn children through REPRO_FAULTS."""
        requests = [intra_request(64, 32, 48, 4096)]
        with injected_faults(
            "raise:intra*:category=permanent", export_env=True
        ):
            engine = BatchEngine(
                EngineConfig(
                    jobs=2, executor="process", start_method="spawn"
                )
            )
            # Two requests so the pool actually spins up both workers.
            report = engine.run_batch(
                requests + [sweep_point_request(96, 64, 80, 1024)]
            )
        error = report.entries[0].record["error"]
        assert error["type"] == "InjectedFaultError"
        assert report.entries[1].ok

    def test_hard_hang_preempted_and_pool_respawned(self):
        """A worker that never yields is killed; the batch survives."""
        requests = _requests()
        spec = f"delay:{request_key(requests[1])[:16]}*:seconds=10:hard=1"
        with injected_faults(spec, export_env=True):
            engine = BatchEngine(
                EngineConfig(
                    jobs=2, executor="process", deadline_seconds=0.3
                )
            )
            report = engine.run_batch(requests)
        oks = [entry.ok for entry in report.entries]
        assert oks == [True, False, True]
        error = report.entries[1].record["error"]
        assert error["type"] == "DeadlineExceededError"
        assert report.resilience["timeouts"] == 1
        assert report.resilience["pool_respawns"] >= 1


# ----------------------------------------------------------------------
# Crash-safe cache persistence
# ----------------------------------------------------------------------
class TestCachePersistence:
    def test_save_is_atomic_on_failure(self, tmp_path):
        path = tmp_path / "cache.json"
        engine = BatchEngine()
        engine.run_batch([intra_request(64, 32, 48, 4096)])
        engine.save_cache(str(path))
        good = path.read_text(encoding="utf-8")
        # Poison the cache so the next save fails mid-serialization.
        engine.cache.put("poison", object())
        with pytest.raises(TypeError):
            engine.save_cache(str(path))
        # The previous file is untouched and no temp litter remains.
        assert path.read_text(encoding="utf-8") == good
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_schema_version_written(self, tmp_path):
        path = tmp_path / "cache.json"
        engine = BatchEngine()
        engine.run_batch([intra_request(64, 32, 48, 4096)])
        engine.save_cache(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == CACHE_SCHEMA_VERSION

    def test_unknown_schema_version_fails_loud(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"version": 99, "entries": []}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="schema version"):
            BatchEngine().load_cache(str(path))

    def test_legacy_version_1_still_loads(self, tmp_path):
        engine = BatchEngine()
        report = engine.run_batch([intra_request(64, 32, 48, 4096)])
        key = report.entries[0].key
        record = report.entries[0].record
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [[key, record]]}),
            encoding="utf-8",
        )
        fresh = BatchEngine()
        assert fresh.load_cache(str(path)) == 1
        warm = fresh.run_batch([intra_request(64, 32, 48, 4096)])
        assert warm.computed == 0
