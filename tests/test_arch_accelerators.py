"""Tests for the five platform models and their dataflow spaces."""

import pytest

from repro.arch import (
    ALL_PLATFORMS,
    MemorySpec,
    TilingFlex,
    constrained_intra,
    evaluate_graph,
    fusecu,
    gemmini,
    planaria,
    single_nra_square,
    tpuv4i,
    unfcu,
    weight_tensor,
)
from repro.core import optimize_intra
from repro.dataflow import memory_access
from repro.ir import OperatorGraph, matmul, rowwise_softmax
from repro.workloads import BLENDERBOT, build_layer_graph


class TestSpecs:
    def test_table3_attributes(self):
        specs = {factory().name: factory() for factory in ALL_PLATFORMS}
        assert not specs["TPUv4i"].stationary_flexible
        assert specs["Gemmini"].stationary_flexible
        assert not specs["Planaria"].stationary_flexible
        assert specs["TPUv4i"].tiling is TilingFlex.LOW
        assert specs["Planaria"].tiling is TilingFlex.HIGH
        assert specs["FuseCU"].tiling is TilingFlex.MIDDLE
        assert specs["FuseCU"].fusion
        assert not specs["UnfCU"].fusion

    def test_same_pe_budget(self):
        """All platforms share the 128x128x4 envelope (fair comparison)."""
        for factory in ALL_PLATFORMS:
            assert factory().total_pes == 128 * 128 * 4

    def test_with_memory(self):
        spec = tpuv4i().with_memory(MemorySpec(buffer_bytes=1024))
        assert spec.memory.buffer_bytes == 1024
        assert spec.name == "TPUv4i"

    def test_weight_tensor_is_second_input(self):
        op = matmul("mm", 4, 5, 6)
        assert weight_tensor(op).name == "mm.B"


class TestSquareSingleNRA:
    def test_square_tiles(self):
        op = matmul("mm", 512, 256, 256)
        dataflow = single_nra_square(op, "mm.B", 10000)
        tiling = dataflow.tiling.for_operator(op)
        assert tiling["K"] == tiling["L"]
        assert tiling["M"] == 1

    def test_edge_capped_at_smaller_dim(self):
        """Low flexibility: the square edge cannot outgrow the skinny dim."""
        op = matmul("mm", 512, 16, 1024)
        dataflow = single_nra_square(op, "mm.B", 10**6)
        tiling = dataflow.tiling.for_operator(op)
        assert tiling["K"] == 16
        assert tiling["L"] == 16

    def test_fits_buffer(self):
        op = matmul("mm", 512, 256, 256)
        for budget in (10, 100, 10000):
            dataflow = single_nra_square(op, "mm.B", budget)
            if dataflow is not None:
                assert dataflow.buffer_footprint(op) <= budget


class TestConstrainedIntra:
    def test_never_beats_principles(self):
        """Every platform space is a subset of the full principle space."""
        op = matmul("mm", 1024, 768, 768)
        optimum = optimize_intra(op, 512 * 1024).memory_access
        for factory in ALL_PLATFORMS:
            _df, report, _label = constrained_intra(op, factory())
            assert report.total >= optimum

    def test_unfcu_matches_principles(self):
        op = matmul("mm", 1024, 768, 768)
        optimum = optimize_intra(op, 512 * 1024).memory_access
        _df, report, _label = constrained_intra(op, unfcu())
        assert report.total == optimum

    def test_tpu_weight_always_non_redundant(self):
        op = matmul("mm", 1024, 768, 768)
        dataflow, report, _ = constrained_intra(op, tpuv4i())
        assert report.per_tensor["mm.B"].multiplier == 1

    def test_planaria_weight_always_non_redundant(self):
        for dims in ((1024, 768, 768), (256, 64, 256), (128, 512, 64)):
            op = matmul("mm", *dims)
            _df, report, _ = constrained_intra(op, planaria())
            assert report.per_tensor["mm.B"].multiplier == 1

    def test_gemmini_at_most_tpu(self):
        """Stationary flexibility only widens the space."""
        for dims in ((1024, 768, 768), (1024, 64, 1024), (512, 2048, 512)):
            op = matmul("mm", *dims)
            _d, tpu_report, _ = constrained_intra(op, tpuv4i())
            _d, gem_report, _ = constrained_intra(op, gemmini())
            assert gem_report.total <= tpu_report.total

    def test_streaming_op_supported_everywhere(self):
        from repro.ir import Tensor

        op = rowwise_softmax("sm", Tensor("x", (64, 64)))
        for factory in ALL_PLATFORMS:
            _df, report, label = constrained_intra(op, factory())
            assert label == "streaming"
            assert report.total == op.ideal_memory_access()


class TestEvaluateGraph:
    def small_graph(self):
        graph = OperatorGraph("g")
        qk = graph.add(matmul("qk", 256, 64, 256, count=4))
        sm = graph.add(rowwise_softmax("sm", qk.output, count=4))
        graph.add(matmul("av", 256, 256, 64, a=sm.output, count=4))
        return graph

    def test_platform_ma_ordering(self):
        """The paper's Fig. 10 ordering: FuseCU <= UnfCU <= Planaria and
        Gemmini <= TPUv4i."""
        graph = self.small_graph()
        ma = {
            factory().name: evaluate_graph(graph, factory()).total_memory_access
            for factory in ALL_PLATFORMS
        }
        assert ma["FuseCU"] <= ma["UnfCU"]
        assert ma["UnfCU"] <= ma["Planaria"]
        assert ma["Gemmini"] <= ma["TPUv4i"]

    def test_fusecu_fuses_attention(self):
        graph = self.small_graph()
        perf = evaluate_graph(graph, fusecu())
        names = [segment.name for segment in perf.segments]
        assert any("+" in name for name in names)

    def test_unfused_platforms_keep_ops_separate(self):
        graph = self.small_graph()
        for factory in (tpuv4i, gemmini, planaria, unfcu):
            perf = evaluate_graph(graph, factory())
            assert len(perf.segments) == 3

    def test_macs_identical_across_platforms(self):
        graph = self.small_graph()
        macs = {
            evaluate_graph(graph, factory()).total_macs
            for factory in ALL_PLATFORMS
        }
        assert len(macs) == 1

    def test_full_model_runs(self):
        graph = build_layer_graph(BLENDERBOT)
        perf = evaluate_graph(graph, fusecu())
        assert perf.total_cycles > 0
        assert 0 < perf.utilization <= 1.0


class TestConstrainedIntraProperties:
    """Randomized consistency of the platform-constrained optimizers."""

    def test_space_inclusion_chain(self):
        """TPUv4i space within Gemmini's; Planaria within UnfCU's (all are
        subsets of the full principle space)."""
        import itertools

        shapes = [(1024, 768, 768), (1024, 64, 1024), (256, 2048, 256),
                  (4096, 128, 4096), (96, 96, 96)]
        from repro.core import optimize_intra

        for dims in shapes:
            op = matmul("mm", *dims)
            full = optimize_intra(op, 512 * 1024).memory_access
            tpu = constrained_intra(op, tpuv4i())[1].total
            gem = constrained_intra(op, gemmini())[1].total
            pla = constrained_intra(op, planaria())[1].total
            unf = constrained_intra(op, unfcu())[1].total
            assert gem <= tpu
            assert unf <= pla
            assert full <= min(tpu, gem, pla, unf)
            assert unf == full  # UnfCU is the full intra space

    def test_results_fit_platform_buffer(self):
        for factory in ALL_PLATFORMS:
            spec = factory()
            for dims in ((512, 256, 384), (64, 2048, 64)):
                op = matmul("mm", *dims)
                dataflow, _report, _label = constrained_intra(op, spec)
                assert (
                    dataflow.buffer_footprint(op) <= spec.memory.buffer_elems
                )

    def test_buffer_shrink_never_helps(self):
        """Constrained MA is monotone non-increasing in buffer size."""
        op = matmul("mm", 1024, 768, 768)
        for factory in ALL_PLATFORMS:
            previous = None
            for kb in (32, 128, 512, 2048):
                spec = factory(MemorySpec(buffer_bytes=kb * 1024))
                total = constrained_intra(op, spec)[1].total
                if previous is not None:
                    assert total <= previous
                previous = total
