"""Tests for the explanation generator and scalability edge cases."""

import time

import pytest

from repro.core import (
    explain_fusion,
    explain_intra,
    optimize_intra,
)
from repro.ir import matmul


class TestExplainIntra:
    def test_paper_example_narrative(self):
        op = matmul("bert", 1024, 768, 768)
        text = explain_intra(op, 512 * 1024)
        assert "medium" in text
        assert "Two-NRA" in text
        assert "untiled dims: K" in text
        assert "redundant tensor" in text

    def test_tiny_regime_narrative(self):
        op = matmul("big", 2048, 2048, 2048)
        text = explain_intra(op, 1000)
        assert "tiny" in text
        assert "Principle 1" in text

    def test_large_regime_narrative(self):
        op = matmul("small", 64, 48, 56)
        text = explain_intra(op, 10**6)
        assert "large" in text
        assert "ideal" in text

    def test_mentions_every_tensor(self):
        op = matmul("mm", 64, 48, 56)
        text = explain_intra(op, 1000)
        for tensor in op.tensors:
            assert tensor.name in text


class TestExplainFusion:
    def test_profitable_chain(self):
        op1 = matmul("mm1", 64, 32, 64)
        op2 = matmul("mm2", 64, 64, 32, a=op1.output)
        text = explain_fusion([op1, op2], 5000)
        assert "Unfused optima" in text
        assert "fusion is profitable" in text
        assert "mm1.C" in text  # the elided intermediate

    def test_reports_pattern(self):
        op1 = matmul("mm1", 64, 32, 64)
        op2 = matmul("mm2", 64, 64, 32, a=op1.output)
        text = explain_fusion([op1, op2], 5000)
        assert "pattern=" in text


class TestScalability:
    def test_huge_dims_optimize_fast(self):
        """One-shot means one-shot: no dependence on dimension sizes."""
        op = matmul("huge", 10**6, 10**6, 10**6)
        start = time.perf_counter()
        result = optimize_intra(op, 64 * 1024 * 1024)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert result.memory_access >= op.ideal_memory_access()

    def test_degenerate_dims(self):
        """Extent-1 dimensions (GEMV corners) are handled throughout."""
        for dims in ((1, 64, 64), (64, 1, 64), (64, 64, 1), (1, 1, 64)):
            op = matmul("thin", *dims)
            result = optimize_intra(op, 500)
            assert result.memory_access >= op.ideal_memory_access()

    def test_unit_matmul(self):
        op = matmul("one", 1, 1, 1)
        result = optimize_intra(op, 3)
        assert result.memory_access == 3  # each scalar once
