"""Unit tests for repro.ir.loopnest."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import LoopNest, TiledLoop


class TestTiledLoop:
    def test_trip_count(self):
        assert TiledLoop("M", 10, 3).trip == 4
        assert TiledLoop("M", 10, 5).trip == 2
        assert TiledLoop("M", 10, 10).trip == 1

    def test_untiled_flag(self):
        assert TiledLoop("M", 10, 10).untiled
        assert not TiledLoop("M", 10, 5).untiled

    def test_tile_bounds(self):
        with pytest.raises(ValueError):
            TiledLoop("M", 10, 0)
        with pytest.raises(ValueError):
            TiledLoop("M", 10, 11)

    def test_bad_extent(self):
        with pytest.raises(ValueError):
            TiledLoop("M", 0, 1)

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=1, max_value=1000),
    )
    def test_trip_covers_extent(self, extent, tile):
        tile = min(tile, extent)
        loop = TiledLoop("M", extent, tile)
        assert (loop.trip - 1) * tile < extent <= loop.trip * tile


class TestLoopNest:
    def test_dims(self):
        nest = LoopNest((TiledLoop("M", 4, 2), TiledLoop("K", 6, 3)))
        assert nest.dims == ("M", "K")

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            LoopNest((TiledLoop("M", 4, 2), TiledLoop("M", 6, 3)))

    def test_loop_lookup(self):
        nest = LoopNest((TiledLoop("M", 4, 2),))
        assert nest.loop("M").extent == 4
        with pytest.raises(KeyError):
            nest.loop("Z")

    def test_total_trips(self):
        nest = LoopNest((TiledLoop("M", 4, 2), TiledLoop("K", 9, 3)))
        assert nest.total_trips == 2 * 3

    def test_len_and_iter(self):
        loops = (TiledLoop("M", 4, 2), TiledLoop("K", 9, 3))
        nest = LoopNest(loops)
        assert len(nest) == 2
        assert tuple(nest) == loops
