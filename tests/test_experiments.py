"""Tests for the experiment harnesses (small-scale runs of every artifact)."""

import pytest

from repro.arch import MemorySpec
from repro.experiments import (
    PLATFORM_ORDER,
    TABLE1_ROWS,
    arithmetic_mean,
    format_dict_table,
    format_table,
    geometric_mean,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    table1,
    table2,
    table2_rows,
    table3,
    table3_rows,
)
from repro.ir import matmul
from repro.workloads import BLENDERBOT, LLAMA2


class TestRunnerUtilities:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text and "a" in text and "3" in text

    def test_format_table_validates_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_dict_table(self):
        text = format_dict_table([{"x": 1, "y": 2}])
        assert "x" in text and "1" in text

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0


class TestTables:
    def test_table1_has_this_work(self):
        assert TABLE1_ROWS[-1]["Framework"] == "This work"
        assert "principle-based" in table1()

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 7
        assert rows[0]["Model"] == "Bert"
        assert "LLaMA2" in table2()

    def test_table3_rows(self):
        rows = table3_rows()
        assert [row["Platform"] for row in rows] == list(PLATFORM_ORDER)
        assert "FuseCU" in table3()


class TestFig9:
    def test_small_sweep(self):
        op = matmul("t", 64, 48, 56)
        points = run_fig9(
            operators=[op],
            buffer_sweep_bytes=[256, 2048, 16384],
            include_genetic=False,
        )
        assert len(points) == 3
        assert all(p.principle_at_most_search for p in points)

    def test_normalization(self):
        op = matmul("t", 64, 48, 56)
        (point,) = run_fig9(
            operators=[op], buffer_sweep_bytes=[10**6], include_genetic=False
        )
        assert point.principle_normalized == pytest.approx(1.0)

    def test_render(self):
        op = matmul("t", 64, 48, 56)
        points = run_fig9(
            operators=[op], buffer_sweep_bytes=[2048], include_genetic=False
        )
        assert "principle" in render_fig9(points)

    def test_certified_sweep(self):
        """Every principle point survives independent certification."""
        op = matmul("t", 64, 48, 56)
        points = run_fig9(
            operators=[op],
            buffer_sweep_bytes=[256, 2048, 16384],
            include_genetic=False,
            certify=True,
        )
        assert all(p.certified for p in points)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(models=[BLENDERBOT])

    def test_grid_complete(self, result):
        assert len(result.cells) == 5
        assert result.models == ("Blenderbot",)

    def test_normalized_baseline_is_one(self, result):
        assert result.normalized_ma("Blenderbot", "TPUv4i") == 1.0

    def test_fusecu_saves(self, result):
        assert result.ma_saving("FuseCU", "TPUv4i") > 0

    def test_headline_structure(self, result):
        headline = result.headline()
        assert set(headline) == {
            "fusecu_ma_saving",
            "fusecu_speedup",
            "unfcu_ma_saving",
        }

    def test_render(self, result):
        text = render_fig10(result)
        assert "paper" in text and "FuseCU" in text

    def test_missing_cell(self, result):
        with pytest.raises(KeyError):
            result.cell("Blenderbot", "Nonexistent")


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(model=LLAMA2, seq_lens=(256, 1024, 4096))

    def test_seq_lens(self, result):
        assert result.seq_lens == (256, 1024, 4096)

    def test_saving_grows_with_seq_len(self, result):
        """The paper: greater MA reduction for longer sequences."""
        savings = [result.fusecu_saving(s) for s in result.seq_lens]
        assert savings == sorted(savings)

    def test_render(self, result):
        assert "seq len" in render_fig11(result)


class TestFig12:
    def test_headlines(self):
        result = run_fig12()
        assert result.fusecu_overhead == pytest.approx(0.12, abs=0.01)
        assert result.interconnect_and_control_share < 0.001
        assert result.planaria_overhead == pytest.approx(0.126, abs=0.01)

    def test_render(self):
        text = render_fig12(run_fig12())
        assert "area breakdown" in text
