"""Rendezvous-hash routing properties the sharded tier stands on.

The tier's cache/journal affinity and its resize economics both reduce
to properties of :mod:`repro.shard.hashing`: assignments must be stable
(same key, same shard, forever), resizing must move only the minimal
slice of the keyspace, and none of it may depend on ``hash()`` (which
``PYTHONHASHSEED`` re-seeds per process -- poison for a tier whose
workers are separate processes).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.shard import (
    assignment_counts,
    rendezvous_ranking,
    rendezvous_score,
    rendezvous_shard,
    shard_label,
)

KEYS = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(400)]


class TestStability:
    def test_same_key_same_shard_every_time(self):
        for key in KEYS[:50]:
            first = rendezvous_shard(key, 5)
            assert all(rendezvous_shard(key, 5) == first for _ in range(3))

    def test_scores_are_sha256_derived_not_hash_derived(self):
        # Pin one concrete score so a silent switch to hash() (or a
        # digest-slicing change) fails loudly instead of reshuffling
        # every deployed journal's keyspace.
        digest = hashlib.sha256(b"shard-0\x00k").digest()
        assert rendezvous_score("k", shard_label(0)) == int.from_bytes(
            digest[:8], "big"
        )

    def test_single_shard_owns_everything(self):
        assert all(rendezvous_shard(key, 1) == 0 for key in KEYS[:20])

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_shard("k", 0)
        with pytest.raises(ValueError):
            rendezvous_ranking("k", 0)


class TestMinimalMovement:
    def test_growing_only_moves_keys_to_the_new_shard(self):
        before = {key: rendezvous_shard(key, 4) for key in KEYS}
        after = {key: rendezvous_shard(key, 5) for key in KEYS}
        moved = {key for key in KEYS if before[key] != after[key]}
        # Every moved key must have moved TO the new shard, never
        # between surviving shards.
        assert all(after[key] == 4 for key in moved)
        # And roughly 1/5 of the keyspace moves (binomial slack).
        assert len(moved) < len(KEYS) * 2 / 5

    def test_shrinking_rehomes_only_the_dead_shards_keys(self):
        before = {key: rendezvous_shard(key, 5) for key in KEYS}
        after = {key: rendezvous_shard(key, 4) for key in KEYS}
        for key in KEYS:
            if before[key] != 4:  # shard 4 is the one being removed
                assert after[key] == before[key]

    def test_rehomed_keys_fall_to_their_second_choice(self):
        for key in KEYS[:100]:
            ranking = rendezvous_ranking(key, 5)
            assert ranking[0] == rendezvous_shard(key, 5)
            if ranking[0] == 4:
                # Remove the winner: the key must land on its runner-up.
                assert rendezvous_shard(key, 4) == ranking[1]

    def test_ranking_is_a_permutation(self):
        for key in KEYS[:20]:
            assert sorted(rendezvous_ranking(key, 7)) == list(range(7))


class TestBalance:
    def test_no_shard_starves_or_hogs(self):
        counts = assignment_counts(KEYS, 4)
        assert sum(counts) == len(KEYS)
        # Uniform expectation is 100 per shard; allow wide slack, forbid
        # degenerate skew (a broken score function collapses to one bin).
        assert min(counts) > 40
        assert max(counts) < 200
