"""Unit tests for the closed-form NRA candidate constructors."""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import mm_ops
from repro.core import (
    UnsupportedOperatorError,
    all_candidates,
    is_mm_like,
    is_streaming,
    single_nra,
    streaming_dataflow,
    three_nra,
    two_nra,
)
from repro.core.nra import max_feasible, max_feasible_pair, pair_candidates
from repro.dataflow import NRAClass, memory_access
from repro.ir import Tensor, elementwise, matmul, rowwise_softmax


class TestShapePredicates:
    def test_matmul_is_mm_like(self):
        assert is_mm_like(matmul("mm", 4, 5, 6))

    def test_elementwise_is_streaming(self):
        op = elementwise("ew", Tensor("x", (4, 5)))
        assert is_streaming(op)
        assert not is_mm_like(op)

    def test_softmax_is_streaming(self):
        assert is_streaming(rowwise_softmax("sm", Tensor("x", (4, 5))))

    def test_matmul_not_streaming(self):
        assert not is_streaming(matmul("mm", 4, 5, 6))


class TestSolvers:
    def test_max_feasible_finds_boundary(self):
        assert max_feasible(lambda t: t * t, 100, 50) == 7
        assert max_feasible(lambda t: t, 10, 100) == 10

    def test_max_feasible_infeasible(self):
        assert max_feasible(lambda t: t + 100, 10, 50) is None

    def test_pair_candidates_respect_budget(self):
        def footprint(x, y):
            return x * y + x + y

        for x, y in pair_candidates(footprint, 64, 64, 500):
            assert footprint(x, y) <= 500
            assert 1 <= x <= 64 and 1 <= y <= 64

    def test_max_feasible_pair_balanced(self):
        def footprint(x, y):
            return x * y + x + y

        pair = max_feasible_pair(footprint, 1000, 1000, 1000)
        assert pair is not None
        assert abs(pair[0] - pair[1]) <= 5  # near balanced

    def test_max_feasible_pair_clamps_and_grows(self):
        def footprint(x, y):
            return x * y + x + y

        pair = max_feasible_pair(footprint, 4, 1000, 1000)
        assert pair is not None
        assert pair[0] == 4 and pair[1] > 100

    def test_pair_infeasible(self):
        assert max_feasible_pair(lambda x, y: x * y + 100, 10, 10, 50) is None


class TestSingleNRA:
    def test_stationary_non_redundant(self):
        op = matmul("mm", 64, 32, 48)
        candidate = single_nra(op, "mm.C", 200)
        assert candidate is not None
        report = memory_access(op, candidate.dataflow)
        assert report.per_tensor["mm.C"].multiplier == 1
        assert report.nra_class is NRAClass.SINGLE

    def test_non_stationary_dim_minimized(self):
        op = matmul("mm", 64, 32, 48)
        candidate = single_nra(op, "mm.C", 200)
        tiling = candidate.dataflow.tiling.for_operator(op)
        assert tiling["K"] == 1

    def test_fits_buffer(self):
        op = matmul("mm", 64, 32, 48)
        for budget in (10, 50, 500, 5000):
            candidate = single_nra(op, "mm.C", budget)
            assert candidate is not None
            assert candidate.dataflow.buffer_footprint(op) <= budget

    def test_infeasible_returns_none(self):
        op = matmul("mm", 64, 32, 48)
        assert single_nra(op, "mm.C", 2) is None

    def test_rejects_non_mm(self):
        op = elementwise("ew", Tensor("x", (4, 5)))
        with pytest.raises(UnsupportedOperatorError):
            single_nra(op, "x", 100)


class TestTwoNRA:
    def test_two_tensors_non_redundant(self):
        op = matmul("mm", 64, 32, 48)
        candidate = two_nra(op, "K", "M", 500)
        assert candidate is not None
        report = memory_access(op, candidate.dataflow)
        non_redundant = [
            name for name, e in report.per_tensor.items() if e.multiplier == 1
        ]
        assert sorted(non_redundant) == ["mm.A", "mm.C"]

    def test_untiled_dim_full(self):
        op = matmul("mm", 64, 32, 48)
        candidate = two_nra(op, "K", "M", 500)
        tiling = candidate.dataflow.tiling.for_operator(op)
        assert tiling["K"] == 32
        assert tiling["L"] == 1

    def test_infeasible_when_untiled_dim_too_big(self):
        op = matmul("mm", 64, 32, 48)
        assert two_nra(op, "K", "M", 40) is None

    def test_same_dim_rejected(self):
        op = matmul("mm", 64, 32, 48)
        with pytest.raises(ValueError):
            two_nra(op, "K", "K", 500)

    def test_fits_buffer(self):
        op = matmul("mm", 64, 32, 48)
        for budget in (70, 200, 2000):
            candidate = two_nra(op, "K", "M", budget)
            if candidate is not None:
                assert candidate.dataflow.buffer_footprint(op) <= budget


class TestThreeNRA:
    def test_reaches_ideal(self):
        op = matmul("mm", 64, 32, 48)
        candidate = three_nra(op, "mm.B", 5000)
        assert candidate is not None
        assert memory_access(op, candidate.dataflow).total == op.ideal_memory_access()

    def test_infeasible_below_tensor_size(self):
        op = matmul("mm", 64, 32, 48)
        assert three_nra(op, "mm.B", 32 * 48 - 1) is None

    def test_resident_fully_untiled(self):
        op = matmul("mm", 64, 32, 48)
        candidate = three_nra(op, "mm.B", 5000)
        tiling = candidate.dataflow.tiling.for_operator(op)
        assert tiling["K"] == 32 and tiling["L"] == 48


class TestAllCandidates:
    def test_at_most_twelve(self):
        op = matmul("mm", 64, 32, 48)
        assert len(all_candidates(op, 10**6)) <= 12

    def test_all_feasible(self):
        op = matmul("mm", 64, 32, 48)
        for budget in (10, 100, 1000, 10000):
            for candidate in all_candidates(op, budget):
                assert candidate.dataflow.buffer_footprint(op) <= budget

    @given(mm_ops(max_dim=48), st.integers(4, 4096))
    @settings(max_examples=50, deadline=None)
    def test_candidate_classes_match_labels(self, op, budget):
        for candidate in all_candidates(op, budget):
            report = memory_access(op, candidate.dataflow)
            # The realized class can exceed the constructed class when a
            # maximized tile reaches the full dimension (e.g. a Single-NRA
            # collapses into Two/Three-NRA at large buffers) -- never below.
            assert report.nra_class.value >= candidate.nra.value


class TestStreamingDataflow:
    def test_streaming_reaches_ideal(self):
        op = rowwise_softmax("sm", Tensor("x", (32, 48)))
        dataflow = streaming_dataflow(op)
        assert memory_access(op, dataflow).total == op.ideal_memory_access()

    def test_rejects_mm(self):
        with pytest.raises(UnsupportedOperatorError):
            streaming_dataflow(matmul("mm", 4, 5, 6))
