"""Tests for the fusion-medium distinction (paper Table I, last row)."""

import pytest

from repro.core import FusionMedium, optimize_fused, profitable_patterns, solve_pattern
from repro.dataflow import FusedChain
from repro.dataflow.fusion_nest import FusionError
from repro.ir import matmul


def mm_pair(m=128, k=64, l=128, n=64):
    op1 = matmul("mm1", m, k, l)
    op2 = matmul("mm2", m, l, n, a=op1.output)
    return op1, op2


class TestMediumSemantics:
    def test_compute_unit_frees_buffer(self):
        """With the intermediate in the PE accumulators the same buffer
        affords larger tiles, so compute-unit MA <= memory MA whenever the
        intermediate tile fits the registers."""
        ops = mm_pair()
        for budget in (2000, 8000, 32000):
            memory_result = optimize_fused(
                ops, budget, medium=FusionMedium.MEMORY
            )
            cu_result = optimize_fused(
                ops,
                budget,
                medium=FusionMedium.COMPUTE_UNIT,
                register_elems=128 * 128,
            )
            if memory_result is None or cu_result is None:
                continue
            assert cu_result.memory_access <= memory_result.memory_access

    def test_register_capacity_binds(self):
        """A tiny register file forces small intermediate tiles."""
        ops = mm_pair()
        roomy = optimize_fused(
            ops, 32000, medium=FusionMedium.COMPUTE_UNIT, register_elems=16384
        )
        cramped = optimize_fused(
            ops, 32000, medium=FusionMedium.COMPUTE_UNIT, register_elems=64
        )
        assert roomy is not None
        if cramped is not None:
            assert cramped.memory_access >= roomy.memory_access

    def test_best_is_union(self):
        """BEST never loses to either concrete medium."""
        ops = mm_pair()
        for budget in (2000, 8000, 32000, 128000):
            best = optimize_fused(
                ops, budget, medium=FusionMedium.BEST, register_elems=16384
            )
            for medium in (FusionMedium.MEMORY, FusionMedium.COMPUTE_UNIT):
                concrete = optimize_fused(
                    ops, budget, medium=medium, register_elems=16384
                )
                if concrete is not None:
                    assert best is not None
                    assert best.memory_access <= concrete.memory_access

    def test_compute_unit_needs_register_size(self):
        ops = mm_pair()
        chain = FusedChain.from_ops(ops)
        pattern = profitable_patterns(chain)[0]
        with pytest.raises(FusionError, match="register_elems"):
            solve_pattern(
                chain, pattern, 1000, medium=FusionMedium.COMPUTE_UNIT
            )

    def test_best_rejected_by_solve_pattern(self):
        ops = mm_pair()
        chain = FusedChain.from_ops(ops)
        pattern = profitable_patterns(chain)[0]
        with pytest.raises(FusionError, match="BEST"):
            solve_pattern(chain, pattern, 1000, medium=FusionMedium.BEST)

    def test_intermediate_tile_fits_registers(self):
        """Compute-unit solutions respect the register capacity."""
        ops = mm_pair()
        registers = 4096
        result = optimize_fused(
            ops, 32000, medium=FusionMedium.COMPUTE_UNIT, register_elems=registers
        )
        assert result is not None
        intermediate = result.chain.intermediates()[0]
        tile = result.dataflow.tile_elements(result.chain, intermediate.name)
        assert tile <= registers

    def test_huge_intermediate_falls_back_to_memory_under_best(self):
        """An S x S intermediate beyond the register file still fuses under
        BEST -- via the memory medium (the attention three-resident case)."""
        op1 = matmul("mm1", 512, 16, 512)
        op2 = matmul("mm2", 512, 512, 16, a=op1.output)
        budget = 300000  # fits the full 512x512 intermediate in buffer
        best = optimize_fused(
            [op1, op2], budget, medium=FusionMedium.BEST, register_elems=1024
        )
        cu_only = optimize_fused(
            [op1, op2],
            budget,
            medium=FusionMedium.COMPUTE_UNIT,
            register_elems=1024,
        )
        assert best is not None
        if cu_only is not None:
            assert best.memory_access <= cu_only.memory_access
