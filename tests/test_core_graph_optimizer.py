"""Tests for graph-level fusion planning."""

import pytest

from repro.core import (
    graph_lower_bound,
    optimize_chain,
    optimize_graph,
    principle4_predicate,
)
from repro.ir import OperatorGraph, matmul, rowwise_softmax


def ffn_like_graph(m=128, h=64, f=256):
    graph = OperatorGraph("ffn")
    fc1 = graph.add(matmul("fc1", m, h, f))
    graph.add(matmul("fc2", m, f, h, a=fc1.output))
    return graph


def attention_like_graph(s=64, d=16, count=4):
    graph = OperatorGraph("attn")
    qk = graph.add(matmul("qk", s, d, s, count=count))
    sm = graph.add(rowwise_softmax("sm", qk.output, count=count))
    graph.add(matmul("av", s, s, d, a=sm.output, count=count))
    return graph


class TestOptimizeChain:
    def test_empty_chain(self):
        assert optimize_chain([], 1000) == ()

    def test_single_op_chain(self):
        op = matmul("mm", 32, 16, 24)
        segments = optimize_chain([op], 1000)
        assert len(segments) == 1
        assert not segments[0].fused

    def test_fusable_pair_fused(self):
        graph = ffn_like_graph()
        (chain,) = graph.chains()
        segments = optimize_chain(chain, 50000)
        assert len(segments) == 1
        assert segments[0].fused

    def test_fusion_disabled(self):
        graph = ffn_like_graph()
        (chain,) = graph.chains()
        segments = optimize_chain(chain, 50000, enable_fusion=False)
        assert len(segments) == 2
        assert not any(segment.fused for segment in segments)

    def test_plan_cost_not_worse_than_unfused(self):
        graph = ffn_like_graph()
        (chain,) = graph.chains()
        fused_cost = sum(s.memory_access for s in optimize_chain(chain, 50000))
        unfused_cost = sum(
            s.memory_access
            for s in optimize_chain(chain, 50000, enable_fusion=False)
        )
        assert fused_cost <= unfused_cost

    def test_infeasible_chain_raises(self):
        op = matmul("mm", 32, 16, 24)
        with pytest.raises(ValueError, match="no feasible plan"):
            optimize_chain([op], 1)


class TestOptimizeGraph:
    def test_attention_chain_fully_fused(self):
        graph = attention_like_graph()
        plan = optimize_graph(graph, 10000)
        assert len(plan.fused_segments) == 1
        fused_ops = [op.name for op in plan.fused_segments[0].ops]
        assert fused_ops == ["qk", "sm", "av"]

    def test_plan_covers_all_operators(self):
        graph = attention_like_graph()
        plan = optimize_graph(graph, 10000)
        planned = sorted(op.name for s in plan.segments for op in s.ops)
        assert planned == sorted(op.name for op in graph)

    def test_fusion_improves_total(self):
        graph = attention_like_graph()
        fused = optimize_graph(graph, 10000).memory_access
        unfused = optimize_graph(graph, 10000, enable_fusion=False).memory_access
        assert fused < unfused

    def test_total_at_least_graph_ideal(self):
        graph = attention_like_graph()
        plan = optimize_graph(graph, 10000)
        assert plan.memory_access >= graph.ideal_memory_access()

    def test_describe_lists_segments(self):
        graph = attention_like_graph()
        text = optimize_graph(graph, 10000).describe()
        assert "total MA=" in text

    def test_principle4_predicate_plan(self):
        graph = attention_like_graph()
        plan = optimize_graph(
            graph, 10000, fusion_predicate=principle4_predicate(10000)
        )
        assert plan.memory_access >= optimize_graph(graph, 10000).memory_access

    def test_max_group_limits_segments(self):
        graph = attention_like_graph()
        plan = optimize_graph(graph, 10000, max_group=2)
        assert all(len(segment.ops) <= 2 for segment in plan.segments)


class TestGraphLowerBound:
    def test_bounded_by_ideal(self):
        graph = attention_like_graph()
        bound = graph_lower_bound(graph, 10000)
        assert bound >= graph.ideal_memory_access()

    def test_monotone_in_buffer(self):
        graph = ffn_like_graph()
        previous = None
        for budget in (1000, 4000, 16000, 64000):
            bound = graph_lower_bound(graph, budget)
            if previous is not None:
                assert bound <= previous
            previous = bound

    def test_fusion_flag(self):
        graph = ffn_like_graph()
        assert graph_lower_bound(graph, 50000, enable_fusion=True) <= (
            graph_lower_bound(graph, 50000, enable_fusion=False)
        )
