"""Tests for the intra-operator principle optimizer (paper Sec. III-A).

The central claims verified here:

* the principle-based optimum never loses to exhaustive search over the
  same space (the "lower bound" claim, Fig. 9);
* the paper's worked BERT example reproduces exactly;
* the one-shot regime procedure agrees with the full candidate minimum for
  balanced operators (and the documented deviation for extreme aspect
  ratios stays bounded).
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import mm_ops
from repro.core import (
    BufferRegime,
    InfeasibleError,
    UnsupportedOperatorError,
    classify_buffer,
    one_shot_dataflow,
    optimize_intra,
)
from repro.dataflow import NRAClass, memory_access
from repro.ir import Tensor, matmul, rowwise_softmax
from repro.search import exhaustive_search


class TestPaperExample:
    """Sec. III-A4: A(1024,768) x B(768,768), BS = 512 KB."""

    def setup_method(self):
        self.op = matmul("bert", 1024, 768, 768)
        self.result = optimize_intra(self.op, 512 * 1024)

    def test_regime_is_medium(self):
        assert self.result.regime.regime is BufferRegime.MEDIUM

    def test_two_nra_chosen(self):
        assert self.result.nra_class is NRAClass.TWO

    def test_k_untiled(self):
        tiling = self.result.dataflow.tiling.for_operator(self.op)
        assert tiling["K"] == 768

    def test_l_minimized(self):
        tiling = self.result.dataflow.tiling.for_operator(self.op)
        assert tiling["L"] == 1

    def test_b_access_is_2kl(self):
        """The paper: "minimizing memory access for tensor B to 2KL"."""
        assert self.result.report.per_tensor["bert.B"].accesses == 2 * 768 * 768

    def test_a_and_c_non_redundant(self):
        assert self.result.report.per_tensor["bert.A"].multiplier == 1
        assert self.result.report.per_tensor["bert.C"].multiplier == 1


class TestOptimizeIntraBasics:
    def test_result_fits_buffer(self):
        op = matmul("mm", 64, 32, 48)
        for budget in (10, 100, 1000, 10000):
            result = optimize_intra(op, budget)
            assert result.dataflow.buffer_footprint(op) <= budget

    def test_monotone_in_buffer(self):
        op = matmul("mm", 96, 64, 80)
        previous = None
        for budget in (16, 64, 256, 1024, 4096, 16384):
            total = optimize_intra(op, budget).memory_access
            if previous is not None:
                assert total <= previous
            previous = total

    def test_large_buffer_reaches_ideal(self):
        op = matmul("mm", 64, 32, 48)
        result = optimize_intra(op, 10**6)
        assert result.memory_access == op.ideal_memory_access()

    def test_infeasible_raises(self):
        op = matmul("mm", 64, 32, 48)
        with pytest.raises(InfeasibleError):
            optimize_intra(op, 2)

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            optimize_intra(matmul("mm", 4, 4, 4), 0)

    def test_streaming_operator(self):
        op = rowwise_softmax("sm", Tensor("x", (32, 48)))
        result = optimize_intra(op, 100)
        assert result.memory_access == op.ideal_memory_access()
        assert result.label == "streaming"

    def test_unsupported_operator(self):
        weird = Tensor("w", (4, 5, 6))
        from repro.ir import TensorOperator

        op = TensorOperator(
            name="odd",
            dims={"A": 4, "B": 5, "C": 6, "D": 7},
            inputs=(weird,),
            output=Tensor("o", (4, 7)),
            indexing={"w": ("A", "B", "C"), "o": ("A", "D")},
        )
        with pytest.raises(UnsupportedOperatorError):
            optimize_intra(op, 100)

    def test_count_scales_result(self):
        op1 = matmul("mm", 64, 32, 48)
        op4 = matmul("mm", 64, 32, 48, count=4)
        assert (
            optimize_intra(op4, 500).memory_access
            == 4 * optimize_intra(op1, 500).memory_access
        )

    def test_redundancy_at_least_one(self):
        op = matmul("mm", 64, 32, 48)
        assert optimize_intra(op, 100).redundancy >= 1.0


class TestPrincipleOptimality:
    """The Fig. 9 claim: principles never lose to search."""

    @given(mm_ops(min_dim=3, max_dim=40), st.integers(8, 5000))
    @settings(max_examples=30, deadline=None)
    def test_never_loses_to_exhaustive(self, op, budget):
        searched = exhaustive_search(op, budget)
        try:
            principled = optimize_intra(op, budget)
        except InfeasibleError:
            assert searched is None
            return
        if searched is not None:
            assert principled.memory_access <= searched.memory_access

    def test_beats_search_on_paper_example(self):
        op = matmul("bert", 1024, 768, 768)
        budget = 512 * 1024
        searched = exhaustive_search(op, budget)
        principled = optimize_intra(op, budget)
        assert principled.memory_access <= searched.memory_access


class TestOneShot:
    def test_matches_full_optimum_on_balanced_ops(self):
        """For comparable dims the literal regime table is (near-)exact.

        In the medium/large regimes the table's pick is exactly optimal; in
        the tiny/small regimes the "smallest tensor stationary" heuristic
        can be ~1% off due to integer tile-rounding (e.g. the second
        smallest tensor dividing more evenly).  The paper's continuous
        analysis ignores rounding, so exactness there and a tight bound
        here is the faithful statement.
        """
        for dims in ((64, 64, 64), (96, 64, 80), (128, 96, 112), (48, 64, 56)):
            op = matmul("mm", *dims)
            for budget in (64, 256, 1024, 4096, 16384):
                full = optimize_intra(op, budget)
                one_shot = one_shot_dataflow(op, budget)
                regime = classify_buffer(op, budget).regime
                if regime in (BufferRegime.MEDIUM, BufferRegime.LARGE):
                    assert one_shot.memory_access == full.memory_access, (
                        dims,
                        budget,
                    )
                else:
                    assert (
                        one_shot.memory_access <= 1.05 * full.memory_access
                    ), (dims, budget)

    def test_regime_recorded(self):
        op = matmul("mm", 96, 64, 80)
        result = one_shot_dataflow(op, 500)
        assert result.regime is not None

    @given(mm_ops(min_dim=4, max_dim=64), st.integers(16, 20000))
    @settings(max_examples=40, deadline=None)
    def test_one_shot_within_factor_of_optimum(self, op, budget):
        """Even at extreme aspect ratios the regime table stays close.

        The paper's table assumes the non-dominant MA terms are minor; with
        extreme aspect ratios (huge M, small K/L) the one-shot pick can be
        mildly suboptimal -- documented in EXPERIMENTS.md.  Bound the gap.
        """
        try:
            full = optimize_intra(op, budget).memory_access
        except InfeasibleError:
            return
        one_shot = one_shot_dataflow(op, budget).memory_access
        assert full <= one_shot <= 2 * full

    def test_streaming_passthrough(self):
        op = rowwise_softmax("sm", Tensor("x", (32, 48)))
        assert one_shot_dataflow(op, 100).memory_access == op.ideal_memory_access()
