"""Tests for the analytical memory-access model (repro.dataflow.cost).

Includes a brute-force *tile-walk* reference: execute the tiled loop nest
tile by tile, keep one buffered tile per tensor, and count every fetch.
The analytical multiplier formula must agree exactly -- this validates the
core of the whole library against an operational semantics.
"""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from conftest import mm_ops
from repro.dataflow import (
    Dataflow,
    NRAClass,
    PartialSumConvention,
    Schedule,
    Tiling,
    UNTILED,
    fits_buffer,
    memory_access,
    nra_class,
    tensor_multiplier,
)
from repro.ir import matmul


# ----------------------------------------------------------------------
# Operational reference: walk the tiled nest, count tile fetches.
# ----------------------------------------------------------------------
def tile_walk_accesses(op, dataflow):
    """Reference access counts via literal execution of the tiled nest."""
    resolved = dataflow.tiling.for_operator(op)
    order = dataflow.schedule.order
    trip_ranges = [
        range(math.ceil(op.dims[dim] / resolved[dim])) for dim in order
    ]
    buffered = {t.name: None for t in op.tensors}
    counts = {t.name: 0 for t in op.tensors}
    for point in itertools.product(*trip_ranges):
        indices = dict(zip(order, point))
        for tensor in op.tensors:
            dims = op.dims_of(tensor.name)
            tile_id = tuple(indices[d] for d in dims)
            if buffered[tensor.name] != tile_id:
                # Edge tiles are clipped to the tensor boundary.
                tile_elems = 1
                for d, idx in zip(dims, tile_id):
                    start = idx * resolved[d]
                    tile_elems *= min(resolved[d], op.dims[d] - start)
                counts[tensor.name] += tile_elems
                buffered[tensor.name] = tile_id
    return counts


class TestPaperEquations:
    """The closed forms of paper Sec. III-A, reproduced exactly."""

    def test_eq1_output_stationary(self):
        """Eq. 1: MA = MKL(1/T_L + 1/T_M) + ML."""
        m, k, l, t = 128, 64, 256, 16
        op = matmul("mm", m, k, l)
        df = Dataflow(Tiling({"M": t, "L": t, "K": 1}), Schedule(("M", "L", "K")))
        report = memory_access(op, df)
        assert report.total == m * k * l * 2 // t + m * l

    def test_eq3_two_nra(self):
        """Eq. 3: MA = MKL/T_M + MK + ML with K untiled."""
        m, k, l, t_m = 128, 64, 256, 32
        op = matmul("mm", m, k, l)
        df = Dataflow(
            Tiling({"M": t_m, "L": 1, "K": UNTILED}), Schedule(("M", "L", "K"))
        )
        report = memory_access(op, df)
        assert report.total == m * k * l // t_m + m * k + m * l

    def test_three_nra_ideal(self):
        """Three-NRA reaches the ideal MK + KL + ML."""
        m, k, l = 128, 64, 256
        op = matmul("mm", m, k, l)
        df = Dataflow(
            Tiling({"M": 1, "L": UNTILED, "K": UNTILED}), Schedule(("M", "L", "K"))
        )
        assert memory_access(op, df).total == op.ideal_memory_access()

    def test_eq1_per_tensor_breakdown(self):
        m, k, l, t = 128, 64, 256, 16
        op = matmul("mm", m, k, l)
        df = Dataflow(Tiling({"M": t, "L": t, "K": 1}), Schedule(("M", "L", "K")))
        report = memory_access(op, df)
        assert report.per_tensor["mm.A"].accesses == m * k * (l // t)
        assert report.per_tensor["mm.B"].accesses == k * l * (m // t)
        assert report.per_tensor["mm.C"].accesses == m * l

    def test_input_stationary_symmetry(self):
        """A-stationary: MA = MKL(1/T_M + 1/T_K) + MK."""
        m, k, l, t = 128, 64, 256, 16
        op = matmul("mm", m, k, l)
        df = Dataflow(Tiling({"M": t, "K": t, "L": 1}), Schedule(("M", "K", "L")))
        report = memory_access(op, df)
        assert report.total == m * k * l // t * 2 + m * k


class TestNRAClassification:
    def test_single(self):
        op = matmul("mm", 64, 64, 64)
        df = Dataflow(Tiling({"M": 8, "L": 8, "K": 1}), Schedule(("M", "L", "K")))
        assert nra_class(op, df) is NRAClass.SINGLE

    def test_two(self):
        op = matmul("mm", 64, 64, 64)
        df = Dataflow(
            Tiling({"M": 8, "L": 1, "K": UNTILED}), Schedule(("M", "L", "K"))
        )
        assert nra_class(op, df) is NRAClass.TWO

    def test_three(self):
        op = matmul("mm", 64, 64, 64)
        df = Dataflow(
            Tiling({"M": 1, "L": UNTILED, "K": UNTILED}), Schedule(("M", "L", "K"))
        )
        assert nra_class(op, df) is NRAClass.THREE


class TestConventions:
    def test_read_write_convention_charges_spills(self):
        """A-stationary spills C partial sums K/T_K times."""
        m, k, l, t = 32, 16, 24, 4
        op = matmul("mm", m, k, l)
        df = Dataflow(Tiling({"M": t, "K": t, "L": 1}), Schedule(("M", "K", "L")))
        single = memory_access(op, df, PartialSumConvention.SINGLE)
        rw = memory_access(op, df, PartialSumConvention.READ_WRITE)
        passes = k // t
        assert single.per_tensor["mm.C"].accesses == m * l * passes
        assert rw.per_tensor["mm.C"].accesses == m * l * (2 * passes - 1)

    def test_conventions_agree_without_spills(self):
        op = matmul("mm", 32, 16, 24)
        df = Dataflow(Tiling({"M": 4, "L": 4, "K": 1}), Schedule(("M", "L", "K")))
        assert (
            memory_access(op, df, PartialSumConvention.SINGLE).total
            == memory_access(op, df, PartialSumConvention.READ_WRITE).total
        )

    def test_skip_tensors_elide_traffic(self):
        op = matmul("mm", 32, 16, 24)
        df = Dataflow(Tiling({"M": 4, "L": 4, "K": 1}), Schedule(("M", "L", "K")))
        report = memory_access(op, df, skip_tensors=("mm.C",))
        assert report.per_tensor["mm.C"].accesses == 0
        assert report.per_tensor["mm.C"].multiplier == 1


class TestMultiplierProperties:
    def test_untiled_loops_are_transparent(self):
        """A loop with trip 1 never contributes a multiplier."""
        op = matmul("mm", 32, 16, 24)
        base = Dataflow(
            Tiling({"M": 4, "L": 4, "K": UNTILED}), Schedule(("M", "L", "K"))
        )
        moved = Dataflow(
            Tiling({"M": 4, "L": 4, "K": UNTILED}), Schedule(("K", "M", "L"))
        )
        assert memory_access(op, base).total == memory_access(op, moved).total

    def test_count_scales_total(self):
        op1 = matmul("mm", 32, 16, 24)
        op3 = matmul("mm", 32, 16, 24, count=3)
        df = Dataflow(Tiling({"M": 4, "L": 4, "K": 1}), Schedule(("M", "L", "K")))
        assert memory_access(op3, df).total == 3 * memory_access(op1, df).total

    @given(mm_ops(max_dim=24), st.data())
    @settings(max_examples=60, deadline=None)
    def test_ma_at_least_ideal(self, op, data):
        tiles = {
            dim: data.draw(st.integers(1, extent), label=dim)
            for dim, extent in op.dims.items()
        }
        order = data.draw(st.permutations(list(op.dims)), label="order")
        df = Dataflow(Tiling(tiles), Schedule(tuple(order)))
        assert memory_access(op, df).total >= op.ideal_memory_access()

    @given(mm_ops(max_dim=12), st.data())
    @settings(max_examples=80, deadline=None)
    def test_matches_tile_walk_reference(self, op, data):
        """Analytical counter == operational tile-walk, per tensor."""
        tiles = {
            dim: data.draw(st.integers(1, extent), label=dim)
            for dim, extent in op.dims.items()
        }
        order = data.draw(st.permutations(list(op.dims)), label="order")
        df = Dataflow(Tiling(tiles), Schedule(tuple(order)))
        reference = tile_walk_accesses(op, df)
        report = memory_access(op, df)
        for name, expected in reference.items():
            assert report.per_tensor[name].accesses == expected, (
                f"{name}: analytical {report.per_tensor[name].accesses} != "
                f"walk {expected} (tiles={tiles}, order={order})"
            )


class TestFitsBuffer:
    def test_fits(self):
        op = matmul("mm", 32, 16, 24)
        df = Dataflow(Tiling({"M": 4, "L": 4, "K": 1}), Schedule(("M", "L", "K")))
        footprint = 4 * 1 + 1 * 4 + 4 * 4
        assert fits_buffer(op, df, footprint)
        assert not fits_buffer(op, df, footprint - 1)
