"""Cross-module property tests (hypothesis-heavy invariants).

These tie the library's pieces together with randomized checks that would
each falsify a paper claim if they ever failed:

* the principle optimum is a true lower bound over the modeled space
  (never beaten by any random feasible dataflow, nor by annealing);
* fusing never increases the infinite-buffer floor, and fused MA is
  bounded below by the fused ideal;
* regimes, curves, and inverse queries are mutually consistent;
* the functional array agrees with numpy on random fused chains.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import mm_ops
from repro.arch import FuseCUArray, FuseCUConfig
from repro.core import (
    InfeasibleError,
    classify_buffer,
    decide_fusion,
    intra_lower_bound,
    minimal_buffer_for_ideal,
    optimize_fused,
    optimize_intra,
)
from repro.dataflow import (
    Dataflow,
    FusedChain,
    Schedule,
    Tiling,
    fits_buffer,
    memory_access,
)
from repro.ir import matmul
from repro.search import AnnealingSettings, annealing_search


class TestLowerBoundProperty:
    @given(mm_ops(min_dim=3, max_dim=48), st.integers(16, 8000), st.data())
    @settings(max_examples=60, deadline=None)
    def test_no_random_dataflow_beats_principles(self, op, budget, data):
        """Any feasible random (tiling, order) point is >= the principle MA."""
        tiles = {
            dim: data.draw(st.integers(1, extent), label=dim)
            for dim, extent in op.dims.items()
        }
        order = tuple(data.draw(st.permutations(list(op.dims)), label="order"))
        dataflow = Dataflow(Tiling(tiles), Schedule(order))
        if not fits_buffer(op, dataflow, budget):
            return
        random_ma = memory_access(op, dataflow).total
        principled = optimize_intra(op, budget).memory_access
        assert principled <= random_ma

    @given(mm_ops(min_dim=4, max_dim=40), st.integers(50, 4000))
    @settings(max_examples=10, deadline=None)
    def test_annealing_never_beats_principles(self, op, budget):
        try:
            principled = optimize_intra(op, budget).memory_access
        except InfeasibleError:
            return
        annealed = annealing_search(
            op, budget, AnnealingSettings(steps=600, seed=3)
        ).memory_access
        assert principled <= annealed

    @given(mm_ops(min_dim=3, max_dim=48), st.integers(16, 8000))
    @settings(max_examples=60, deadline=None)
    def test_bounds_sandwich(self, op, budget):
        """ideal <= principle MA <= the trivial all-ones dataflow MA."""
        try:
            principled = optimize_intra(op, budget).memory_access
        except InfeasibleError:
            return
        assert principled >= op.ideal_memory_access()
        trivial = memory_access(
            op,
            Dataflow(
                Tiling({d: 1 for d in op.dims}), Schedule(tuple(op.dims))
            ),
        ).total
        assert principled <= trivial


class TestRegimeCurveConsistency:
    @given(mm_ops(min_dim=4, max_dim=48))
    @settings(max_examples=30, deadline=None)
    def test_ideal_reached_exactly_from_threshold(self, op):
        minimal = minimal_buffer_for_ideal(op)
        assert intra_lower_bound(op, minimal) == op.ideal_memory_access()
        if minimal > 1:
            assert intra_lower_bound(op, minimal - 1) > op.ideal_memory_access()

    @given(mm_ops(min_dim=4, max_dim=48))
    @settings(max_examples=30, deadline=None)
    def test_large_regime_buffer_achieves_ideal_with_margin(self, op):
        """Comfortably inside the large regime the bound is the ideal."""
        buffer_elems = 2 * sum(t.size for t in op.tensors)
        assert classify_buffer(op, buffer_elems).regime.value == "large"
        assert intra_lower_bound(op, buffer_elems) == op.ideal_memory_access()


class TestFusionProperties:
    @given(
        st.integers(4, 32),
        st.integers(4, 32),
        st.integers(4, 32),
        st.integers(4, 32),
        st.integers(100, 20000),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_ma_at_least_fused_ideal(self, m, k, l, n, budget):
        op1 = matmul("mm1", m, k, l)
        op2 = matmul("mm2", m, l, n, a=op1.output)
        chain = FusedChain.from_ops([op1, op2])
        result = optimize_fused([op1, op2], budget)
        if result is None:
            return
        assert result.memory_access >= chain.ideal_memory_access()

    @given(
        st.integers(4, 32),
        st.integers(4, 32),
        st.integers(4, 32),
        st.integers(4, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_fusion_decision_consistent(self, m, k, l, n):
        """The decision's profitable flag matches its own numbers."""
        op1 = matmul("mm1", m, k, l)
        op2 = matmul("mm2", m, l, n, a=op1.output)
        decision = decide_fusion([op1, op2], 5000)
        if decision.fused is None:
            assert not decision.profitable
        else:
            assert decision.profitable == (
                decision.fused.memory_access < decision.unfused_memory_access
            )

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_functional_fused_chain_random(self, seed):
        rng = np.random.default_rng(seed)
        m, k, l, n = rng.integers(2, 14, size=4)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        d = rng.normal(size=(l, n))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        for runner in (fusecu.tile_fusion, fusecu.column_fusion):
            run = runner(a, b, d)
            assert np.allclose(run.result, (a @ b) @ d)
            assert run.intermediate_traffic == 0


class TestRandomGraphs:
    """Fuzz the graph planner with randomized chain topologies."""

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_chain_plans_are_sound(self, data):
        from repro.core import optimize_graph
        from repro.ir import OperatorGraph

        length = data.draw(st.integers(1, 4), label="length")
        dims = [data.draw(st.integers(4, 24), label=f"d{i}") for i in range(length + 2)]
        graph = OperatorGraph("fuzz")
        previous = None
        for index in range(length):
            m, k, l = dims[0], dims[index], dims[index + 1]
            if previous is None:
                op = matmul(f"op{index}", m, k, l)
            else:
                op = matmul(f"op{index}", m, k, l, a=previous.output)
            graph.add(op)
            previous = op
        budget = data.draw(st.integers(64, 8000), label="budget")
        plan = optimize_graph(graph, budget)
        planned = sorted(op.name for s in plan.segments for op in s.ops)
        assert planned == sorted(op.name for op in graph)
        assert plan.memory_access >= graph.ideal_memory_access()
        unfused = optimize_graph(graph, budget, enable_fusion=False)
        assert plan.memory_access <= unfused.memory_access
