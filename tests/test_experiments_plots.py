"""Tests for the ASCII chart helpers."""

import pytest

from repro.experiments import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_renders_values(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "1" in text

    def test_max_bar_is_full_width(self):
        text = bar_chart({"a": 2.0, "b": 1.0}, width=10)
        rows = text.splitlines()
        assert rows[0].count("█") == 10
        assert rows[1].count("█") == 5

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_unit_suffix(self):
        text = bar_chart({"a": 3.0}, unit="x")
        assert "3x" in text


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = grouped_bar_chart(
            {"g1": {"a": 1.0, "b": 0.5}, "g2": {"a": 0.25}}, title="grid"
        )
        assert "g1:" in text and "g2:" in text
        assert "grid" in text


class TestLineChart:
    def test_basic_plot(self):
        text = line_chart(
            [0, 1, 2, 3],
            {"up": [0.0, 1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0, 0.0]},
            title="lines",
            height=5,
            width=20,
        )
        assert "lines" in text
        assert "o=up" in text and "x=down" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            line_chart([0, 1], {"s": [1.0]})

    def test_constant_series(self):
        text = line_chart([0, 1], {"flat": [1.0, 1.0]})
        assert "flat" in text

    def test_empty(self):
        assert line_chart([], {}, title="t") == "t"
