"""Tests for whole-model totals and the MoE extension workload."""

import pytest

from repro.arch import fusecu, tpuv4i
from repro.core import optimize_graph
from repro.workloads import (
    BERT,
    LLAMA2,
    MODEL_LAYERS,
    PAPER_MODELS,
    build_layer_graph,
    build_moe_ffn_graph,
    evaluate_model,
    layer_count,
)


class TestFullModel:
    def test_layer_counts_known_for_paper_models(self):
        for model in PAPER_MODELS:
            assert model.name in MODEL_LAYERS
            assert layer_count(model) >= 1

    def test_totals_scale_by_layers(self):
        totals = evaluate_model(BERT, fusecu())
        assert totals.layers == 12
        assert (
            totals.total_memory_access
            == 12 * totals.layer_perf.total_memory_access
        )
        assert totals.total_cycles == 12 * totals.layer_perf.total_cycles

    def test_layer_override(self):
        totals = evaluate_model(BERT, fusecu(), layers=3)
        assert totals.layers == 3

    def test_latency_unit(self):
        totals = evaluate_model(BERT, fusecu())
        assert totals.latency_ms == pytest.approx(totals.total_cycles / 1e6)

    def test_energy_scales(self):
        totals = evaluate_model(BERT, fusecu())
        per_layer = totals.energy().total_pj / totals.layers
        single = evaluate_model(BERT, fusecu(), layers=1).energy().total_pj
        assert per_layer == pytest.approx(single)

    def test_speedup_preserved_end_to_end(self):
        """Layer scaling cancels in ratios: end-to-end speedup equals the
        per-layer speedup."""
        fast = evaluate_model(LLAMA2, fusecu())
        slow = evaluate_model(LLAMA2, tpuv4i())
        assert fast.total_cycles / slow.total_cycles == pytest.approx(
            fast.layer_perf.total_cycles / slow.layer_perf.total_cycles
        )


class TestMoE:
    def test_structure(self):
        graph = build_moe_ffn_graph(BERT, num_experts=8, top_k=2)
        assert len(graph) == 3
        chains = {tuple(op.name for op in c) for c in graph.chains()}
        assert ("Bert.expert_ffn1", "Bert.expert_ffn2") in chains

    def test_expert_count_multiplier(self):
        graph = build_moe_ffn_graph(BERT, num_experts=8, top_k=2)
        ffn1 = graph.operator("Bert.expert_ffn1")
        assert ffn1.count == 8
        # Balanced routing: each expert sees tokens * top_k / experts.
        assert ffn1.dims["M"] == BERT.batch * BERT.seq_len * 2 // 8

    def test_macs_scale_with_top_k(self):
        dense_tokens = BERT.batch * BERT.seq_len
        graph = build_moe_ffn_graph(BERT, num_experts=8, top_k=2)
        expert_macs = (
            graph.operator("Bert.expert_ffn1").macs
            + graph.operator("Bert.expert_ffn2").macs
        )
        dense_macs = 2 * dense_tokens * BERT.hidden * BERT.ffn_hidden
        assert expert_macs == pytest.approx(2 * dense_macs / 8 * 8, rel=0.01)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            build_moe_ffn_graph(BERT, num_experts=4, top_k=5)
        with pytest.raises(ValueError):
            build_moe_ffn_graph(BERT, num_experts=0)

    def test_expert_chains_fuse(self):
        graph = build_moe_ffn_graph(BERT, num_experts=8, top_k=2)
        plan = optimize_graph(graph, 512 * 1024)
        fused = {tuple(op.name for op in s.ops) for s in plan.fused_segments}
        assert ("Bert.expert_ffn1", "Bert.expert_ffn2") in fused

    def test_moe_macs_are_top_k_times_dense(self):
        """Each token runs top_k full-width expert FFNs, so the block's
        MACs are exactly top_k x the dense FFN's (the MoE saving is per
        unit of *capacity*, 8x parameters here, not per token)."""
        moe = build_moe_ffn_graph(BERT, num_experts=8, top_k=2)
        dense = build_layer_graph(BERT)
        dense_ffn_macs = (
            dense.operator("Bert.ffn1").macs + dense.operator("Bert.ffn2").macs
        )
        moe_ffn_macs = (
            moe.operator("Bert.expert_ffn1").macs
            + moe.operator("Bert.expert_ffn2").macs
        )
        assert moe_ffn_macs == 2 * dense_ffn_macs
