"""Tests for fused multi-operator loop nests (repro.dataflow.fusion_nest)."""

import pytest

from repro.dataflow import (
    FusedChain,
    FusedDataflow,
    FusionError,
    Tiling,
    UNTILED,
    fused_memory_access,
)
from repro.ir import matmul, rowwise_softmax


def mm_pair(m=64, k=32, l=48, n=40):
    op1 = matmul("mm1", m, k, l)
    op2 = matmul("mm2", m, l, n, a=op1.output)
    return op1, op2


class TestChainConstruction:
    def test_global_dims_unified(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        # op2's reduction dim is op1's L; op2's output dim gets a fresh name.
        assert chain.global_dims == {"M": 64, "K": 32, "L": 48, "L1": 40}

    def test_common_dims_are_intermediate_dims(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        assert set(chain.common_dims) == {"M", "L"}

    def test_intermediates(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        assert [t.name for t in chain.intermediates()] == ["mm1.C"]

    def test_external_tensors(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        names = {t.name for t in chain.external_tensors()}
        assert names == {"mm1.A", "mm1.B", "mm2.B", "mm2.C"}

    def test_non_chain_rejected(self):
        op1 = matmul("mm1", 4, 5, 6)
        op2 = matmul("mm2", 4, 6, 7)  # does not consume op1's output
        with pytest.raises(FusionError, match="chain"):
            FusedChain.from_ops([op1, op2])

    def test_count_mismatch_rejected(self):
        op1 = matmul("mm1", 4, 5, 6, count=2)
        op2 = matmul("mm2", 4, 6, 7, a=op1.output, count=3)
        with pytest.raises(FusionError, match="count"):
            FusedChain.from_ops([op1, op2])

    def test_softmax_chain(self):
        op1 = matmul("mm1", 8, 4, 6)
        sm = rowwise_softmax("sm", op1.output)
        op2 = matmul("mm2", 8, 6, 5, a=sm.output)
        chain = FusedChain.from_ops([op1, sm, op2])
        assert set(chain.common_dims) == {"M", "L"}
        assert len(chain.intermediates()) == 2

    def test_ideal_memory_access_excludes_intermediates(self):
        op1, op2 = mm_pair(8, 4, 6, 5)
        chain = FusedChain.from_ops([op1, op2])
        assert chain.ideal_memory_access() == 8 * 4 + 4 * 6 + 6 * 5 + 8 * 5

    def test_macs_preserved(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        assert chain.macs == op1.macs + op2.macs


class TestFusedDataflowValidation:
    def make(self, **tiles):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M", "L"),
            private_orders={"mm1": ("K",), "mm2": ("L1",)},
            tiling=Tiling(tiles),
        )
        return chain, dataflow

    def test_valid(self):
        chain, dataflow = self.make(M=8, L=8, K=1, L1=1)
        dataflow.validate(chain)

    def test_shared_must_be_common(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M", "K"),
            private_orders={"mm1": ("L",), "mm2": ("L", "L1")},
            tiling=Tiling({"M": 8, "L": 8, "K": 1, "L1": 1}),
        )
        with pytest.raises(FusionError, match="common"):
            dataflow.validate(chain)

    def test_private_orders_must_cover(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M", "L"),
            private_orders={"mm1": (), "mm2": ("L1",)},
            tiling=Tiling({"M": 8, "L": 8, "K": 1, "L1": 1}),
        )
        with pytest.raises(FusionError, match="cover"):
            dataflow.validate(chain)

    def test_buffer_footprint_counts_each_tensor_once(self):
        chain, dataflow = self.make(M=8, L=8, K=1, L1=1)
        # C(8x8) + A(8x1) + B(1x8) + D(8x1) + E(8x1)
        assert dataflow.buffer_footprint(chain) == 64 + 8 + 8 + 8 + 8


class TestFusedAccessCounting:
    def test_single_osis_formula(self):
        """Fig. 4(a): MA = (MKL + MLN)(1/T_M + 1/T_L), C free."""
        m, k, l, n, t = 64, 32, 48, 40, 8
        op1, op2 = mm_pair(m, k, l, n)
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M", "L"),
            private_orders={"mm1": ("K",), "mm2": ("L1",)},
            tiling=Tiling({"M": t, "L": t, "K": 1, "L1": 1}),
        )
        report = fused_memory_access(chain, dataflow)
        assert report.fusable
        expected = (m * k * l + m * l * n) * 2 // t
        assert report.total == expected
        assert report.per_tensor["mm1.C"].accesses == 0

    def test_three_resident_reaches_fused_ideal(self):
        m, k, l, n = 64, 32, 48, 40
        op1, op2 = mm_pair(m, k, l, n)
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M", "L"),
            private_orders={"mm1": ("K",), "mm2": ("L1",)},
            tiling=Tiling({"M": UNTILED, "L": UNTILED, "K": 1, "L1": 1}),
        )
        report = fused_memory_access(chain, dataflow)
        assert report.fusable
        assert report.total == chain.ideal_memory_access()

    def test_intermediate_dims_must_be_shared(self):
        """A nest materializing C across a private loop is rejected: its
        true liveness would exceed the tile footprint (paper's fused
        dataflows always iterate the intermediate's dims jointly)."""
        m, k, l, n = 64, 32, 48, 40
        op1, op2 = mm_pair(m, k, l, n)
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M",),
            private_orders={"mm1": ("L", "K"), "mm2": ("L", "L1")},
            tiling=Tiling({"M": 8, "L": 8, "K": 1, "L1": 1}),
        )
        with pytest.raises(FusionError, match="intermediate"):
            fused_memory_access(chain, dataflow)

    def test_count_scales_fused_total(self):
        op1 = matmul("mm1", 16, 8, 12, count=4)
        op2 = matmul("mm2", 16, 12, 10, a=op1.output, count=4)
        chain = FusedChain.from_ops([op1, op2])
        dataflow = FusedDataflow(
            shared_order=("M", "L"),
            private_orders={"mm1": ("K",), "mm2": ("L1",)},
            tiling=Tiling({"M": 4, "L": 4, "K": 1, "L1": 1}),
        )
        report = fused_memory_access(chain, dataflow)
        assert report.total == 4 * report.per_instance_total
