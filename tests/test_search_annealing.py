"""Tests for the simulated-annealing baseline."""

import pytest

from repro.core import optimize_intra
from repro.ir import matmul
from repro.search import AnnealingSettings, annealing_search, exhaustive_search


class TestSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSettings(steps=0)
        with pytest.raises(ValueError):
            AnnealingSettings(cooling=1.5)
        with pytest.raises(ValueError):
            AnnealingSettings(initial_temperature=0)


class TestAnnealingSearch:
    def test_deterministic(self):
        op = matmul("mm", 48, 32, 40)
        settings = AnnealingSettings(steps=500, seed=11)
        a = annealing_search(op, 500, settings)
        b = annealing_search(op, 500, settings)
        assert a.memory_access == b.memory_access

    def test_feasible(self):
        op = matmul("mm", 48, 32, 40)
        result = annealing_search(op, 500, AnnealingSettings(steps=500))
        assert result.dataflow.buffer_footprint(op) <= 500

    def test_counts_evaluations(self):
        op = matmul("mm", 48, 32, 40)
        result = annealing_search(op, 500, AnnealingSettings(steps=300))
        assert result.evaluations >= 300

    def test_reasonable_quality(self):
        op = matmul("mm", 48, 32, 40)
        annealed = annealing_search(op, 500, AnnealingSettings(steps=1500))
        searched = exhaustive_search(op, 500)
        assert annealed.memory_access <= 1.5 * searched.memory_access

    def test_principles_never_lose(self):
        """Fig. 9, third comparator."""
        for dims in ((48, 32, 40), (96, 64, 80), (128, 32, 64)):
            op = matmul("mm", *dims)
            for budget in (200, 2000, 20000):
                annealed = annealing_search(
                    op, budget, AnnealingSettings(steps=1200)
                )
                principled = optimize_intra(op, budget)
                assert principled.memory_access <= annealed.memory_access, (
                    dims,
                    budget,
                )

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            annealing_search(matmul("mm", 4, 4, 4), 0)

    def test_describe(self):
        op = matmul("mm", 16, 16, 16)
        result = annealing_search(op, 200, AnnealingSettings(steps=200))
        assert "annealing" in result.describe(op)
