"""Tests for DAG-plan certification (``repro.verify.plan_audit``)."""

import dataclasses

import pytest

from repro.ir import OperatorGraph, matmul
from repro.plan import list_scenarios, plan_dag, scenario_graph
from repro.verify import CertifiedPlan, certify_plan, drain_discrepancies


def fanout_graph(dim=32):
    graph = OperatorGraph("fanout")
    x = graph.add(matmul("x", dim, dim, dim))
    graph.add(matmul("c1", dim, dim, dim, a=x.output))
    graph.add(matmul("c2", dim, dim, dim, a=x.output))
    return graph


def join_graph(dim=64):
    graph = OperatorGraph("joined")
    a = graph.add(matmul("a", dim, dim, dim))
    b = graph.add(matmul("b", dim, dim, dim))
    graph.add(matmul("join", dim, dim, dim, a=a.output, b=b.output))
    return graph


@pytest.fixture(autouse=True)
def _clean_discrepancy_registry():
    drain_discrepancies()
    yield
    drain_discrepancies()


class TestCertifyPlan:
    @pytest.mark.parametrize("scenario", list_scenarios())
    @pytest.mark.parametrize("buffer_elems", [4096, 32768])
    def test_scenarios_certify_clean(self, scenario, buffer_elems):
        graph = scenario_graph(scenario)
        certified = certify_plan(graph, buffer_elems)
        assert isinstance(certified, CertifiedPlan)
        assert certified.certificate.ok, certified.certificate.describe()
        assert not certified.certificate.healed

    def test_synthetic_graphs_certify_clean(self):
        for graph in (fanout_graph(), join_graph()):
            certified = certify_plan(graph, 8192)
            assert certified.certificate.ok, certified.certificate.describe()

    def test_retention_plan_certifies(self):
        graph = fanout_graph()
        certified = certify_plan(graph, 4096)
        assert certified.plan.retained == ("x.C",)
        assert certified.certificate.ok
        names = {check.name for check in certified.certificate.checks}
        assert "retention" in names

    def test_corrupt_claim_fails_cost_audit(self):
        graph = fanout_graph()
        plan = plan_dag(graph, 4096)
        certified = certify_plan(
            graph, 4096, plan=plan,
            claimed_memory_access=plan.memory_access // 2,
        )
        assert not certified.certificate.ok
        failed = {
            check.name
            for check in certified.certificate.checks
            if not check.passed
        }
        assert "cost_audit" in failed

    def test_corrupt_claim_heals_under_paranoid(self):
        graph = fanout_graph()
        plan = plan_dag(graph, 4096)
        certified = certify_plan(
            graph, 4096, plan=plan,
            claimed_memory_access=plan.memory_access // 2,
            paranoid=True,
        )
        assert certified.certificate.healed
        assert certified.certificate.ok  # healed plan re-certifies clean
        discrepancy = certified.certificate.discrepancy
        assert discrepancy is not None
        assert discrepancy.reason == "failed_audit"
        assert certified.plan.memory_access == plan.memory_access
        registered = drain_discrepancies()
        assert len(registered) == 1
        assert registered[0].kind == "plan"

    def test_paranoid_appends_probe_check(self):
        graph = join_graph()
        certified = certify_plan(graph, 8192, paranoid=True)
        assert certified.certificate.ok
        probe = [
            check
            for check in certified.certificate.checks
            if check.name == "optimality_probe"
        ]
        assert len(probe) == 1 and probe[0].passed
        assert certified.baseline_memory_access == (
            certified.plan.memory_access
        )
        assert drain_discrepancies() == ()

    def test_structural_corruption_fails(self):
        graph = fanout_graph()
        plan = plan_dag(graph, 4096, enable_retention=False)
        # Drop a segment: the cover check must notice the missing op.
        broken = dataclasses.replace(plan, segments=plan.segments[:-1])
        certified = certify_plan(graph, 4096, plan=broken)
        assert not certified.certificate.ok
        failed = {
            check.name
            for check in certified.certificate.checks
            if not check.passed
        }
        assert "cover" in failed

    def test_bogus_retention_fails(self):
        graph = fanout_graph()
        plan = plan_dag(graph, 4096, enable_retention=False)
        broken = dataclasses.replace(plan, retained=("x.A",))
        certified = certify_plan(graph, 4096, plan=broken)
        assert not certified.certificate.ok
        failed = {
            check.name
            for check in certified.certificate.checks
            if not check.passed
        }
        assert "retention" in failed

    def test_certificate_serializes(self):
        graph = fanout_graph()
        certified = certify_plan(graph, 8192)
        as_dict = certified.certificate.as_dict()
        assert as_dict["kind"] == "plan"
        assert as_dict["ok"] is True
        assert all("name" in check for check in as_dict["checks"])
