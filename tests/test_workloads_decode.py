"""Tests for the decode-phase workload extension."""

import pytest

from repro.arch import evaluate_graph, fusecu, tpuv4i
from repro.core import optimize_graph
from repro.workloads import BERT, LLAMA2, build_decode_graph


class TestDecodeGraph:
    def test_structure(self):
        graph = build_decode_graph(LLAMA2, context=2048)
        assert len(graph) == 9
        chain_sets = {tuple(op.name for op in c) for c in graph.chains()}
        assert ("LLaMA2.qk", "LLaMA2.softmax", "LLaMA2.av") in chain_sets

    def test_single_token_attention_shapes(self):
        graph = build_decode_graph(LLAMA2, context=2048)
        qk = graph.operator("LLaMA2.qk")
        assert qk.dims == {"M": 1, "K": 128, "L": 2048}
        av = graph.operator("LLaMA2.av")
        assert av.dims == {"M": 1, "K": 2048, "L": 128}

    def test_invalid_context(self):
        with pytest.raises(ValueError):
            build_decode_graph(LLAMA2, context=0)

    def test_macs_scale_with_context(self):
        short = build_decode_graph(LLAMA2, context=512)
        long = build_decode_graph(LLAMA2, context=8192)
        assert long.macs > short.macs

    def test_projection_macs_context_invariant(self):
        short = build_decode_graph(LLAMA2, context=512)
        long = build_decode_graph(LLAMA2, context=8192)
        assert (
            short.operator("LLaMA2.ffn1").macs
            == long.operator("LLaMA2.ffn1").macs
        )


class TestDecodeOptimization:
    def test_plan_feasible(self):
        graph = build_decode_graph(BERT, context=1024)
        plan = optimize_graph(graph, 512 * 1024)
        assert plan.memory_access >= graph.ideal_memory_access()

    def test_decode_is_memory_bound(self):
        """GEMV-shaped decode work saturates bandwidth, not compute."""
        graph = build_decode_graph(LLAMA2, context=4096)
        perf = evaluate_graph(graph, tpuv4i())
        memory_bound = sum(1 for s in perf.segments if s.memory_bound)
        assert memory_bound >= len(perf.segments) / 2

    def test_fusecu_still_wins_at_decode(self):
        graph = build_decode_graph(LLAMA2, context=4096)
        fused = evaluate_graph(graph, fusecu())
        base = evaluate_graph(graph, tpuv4i())
        assert fused.total_memory_access <= base.total_memory_access

    def test_fusion_saving_smaller_than_prefill(self):
        """Decode intermediates are 1 x context vectors, not S x S
        matrices, so fusion saves relatively less than at prefill."""
        prefill = build_decode_graph(LLAMA2, context=4096)
        fused = optimize_graph(prefill, 512 * 1024).memory_access
        unfused = optimize_graph(
            prefill, 512 * 1024, enable_fusion=False
        ).memory_access
        decode_saving = 1 - fused / unfused

        from repro.workloads import build_layer_graph

        layer = build_layer_graph(LLAMA2)
        fused_p = optimize_graph(layer, 512 * 1024).memory_access
        unfused_p = optimize_graph(
            layer, 512 * 1024, enable_fusion=False
        ).memory_access
        prefill_saving = 1 - fused_p / unfused_p
        assert decode_saving < prefill_saving
