"""Unit tests for repro.ir.tensor."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import Tensor, matrix


class TestTensorConstruction:
    def test_basic(self):
        tensor = Tensor("a", (4, 5))
        assert tensor.name == "a"
        assert tensor.shape == (4, 5)
        assert tensor.dtype_bytes == 1

    def test_rank(self):
        assert Tensor("a", (4,)).rank == 1
        assert Tensor("a", (4, 5, 6)).rank == 3

    def test_size(self):
        assert Tensor("a", (4, 5)).size == 20
        assert Tensor("a", (7,)).size == 7

    def test_bytes_scaled_by_dtype(self):
        assert Tensor("a", (4, 5), dtype_bytes=2).bytes == 40

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Tensor("", (4,))

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            Tensor("a", ())

    def test_zero_extent_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Tensor("a", (4, 0))

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Tensor("a", (-1, 4))

    def test_non_integer_extent_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Tensor("a", (4, 2.5))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            Tensor("a", (4,), dtype_bytes=0)

    def test_frozen(self):
        tensor = Tensor("a", (4,))
        with pytest.raises(AttributeError):
            tensor.name = "b"


class TestTensorHelpers:
    def test_with_name(self):
        tensor = Tensor("a", (4, 5), dtype_bytes=2)
        renamed = tensor.with_name("b")
        assert renamed.name == "b"
        assert renamed.shape == tensor.shape
        assert renamed.dtype_bytes == tensor.dtype_bytes

    def test_matrix_constructor(self):
        tensor = matrix("w", 3, 7)
        assert tensor.shape == (3, 7)
        assert tensor.rank == 2

    def test_str_rendering(self):
        assert str(Tensor("a", (4, 5))) == "a[4x5]"

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=4))
    def test_size_is_product_of_shape(self, dims):
        import math

        tensor = Tensor("t", tuple(dims))
        assert tensor.size == math.prod(dims)

    def test_equality_by_value(self):
        assert Tensor("a", (4, 5)) == Tensor("a", (4, 5))
        assert Tensor("a", (4, 5)) != Tensor("a", (5, 4))
