"""Tests for the durable-execution layer.

Covers the write-ahead journal's file format and crash recovery (torn
tails, mid-file corruption, incompatible schema versions), the
``exit`` fault action (crash-after-n-completions), kill-and-resume
byte-identical replay through the engine and :func:`run_grid`, and the
graceful SIGINT/SIGTERM shutdown guard.
"""

import json
import os
import signal
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    JOURNAL_FORMAT,
    JOURNAL_SCHEMA_VERSION,
    RESUMABLE_EXIT_CODE,
    BatchAbortError,
    BatchEngine,
    BatchInterrupted,
    BatchJournal,
    EngineConfig,
    FaultSpecError,
    JournalError,
    JournalExistsError,
    JournalVersionError,
    ShutdownRequested,
    injected_faults,
    intra_request,
    parse_fault_spec,
    reset_fault_state,
    shutdown_guard,
)
from repro.service.journal import _durable, fsck_file


@pytest.fixture(autouse=True)
def _isolated_fault_state(monkeypatch):
    """No fault plan (or leaked REPRO_FAULTS) bleeds between tests."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


def _requests(count=5):
    """Distinct feasible intra requests (cheap to compute)."""
    return [
        intra_request(16 + 4 * index, 12, 20, buffer_elems=256)
        for index in range(count)
    ]


def _ok_record(value=1):
    return {"ok": True, "kind": "intra", "result": {"memory_access": value}}


def _error_record(error_type, category):
    return {
        "ok": False,
        "kind": "intra",
        "error": {"type": error_type, "message": "x", "category": category},
    }


def _records(report):
    """The result stream as canonical bytes (what the CLI emits per line)."""
    return [
        json.dumps(entry.record, sort_keys=True) for entry in report.entries
    ]


# ----------------------------------------------------------------------
# Journal file format and recovery
# ----------------------------------------------------------------------
class TestJournalFile:
    def test_create_writes_versioned_header(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            assert len(journal) == 0
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["format"] == JOURNAL_FORMAT
        assert header["version"] == JOURNAL_SCHEMA_VERSION

    def test_existing_journal_without_resume_fails(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        BatchJournal(path).close()
        with pytest.raises(JournalExistsError):
            BatchJournal(path)

    def test_resume_replays_durable_completions(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            assert journal.record_completion("k1", _ok_record(1))
            assert journal.record_completion(
                "k2", _error_record("InfeasibleError", "permanent")
            )
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2"}
            assert journal.completed["k1"]["result"]["memory_access"] == 1
            assert journal.recovered_drops == 0

    def test_transient_outcomes_are_not_checkpointed(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            assert not journal.record_completion(
                "k1", _error_record("WorkerCrashError", "transient")
            )
            assert not journal.record_completion(
                "k2", _error_record("CircuitOpenError", "transient")
            )
            assert journal.appended == 0
        with BatchJournal(path, resume=True) as journal:
            assert len(journal) == 0

    def test_durable_policy_mirrors_cache_policy(self):
        assert _durable(_ok_record())
        assert _durable(_error_record("InfeasibleError", "permanent"))
        assert not _durable(_error_record("DeadlineExceededError", "transient"))
        # An open circuit is never a durable answer even if misclassified.
        assert not _durable(_error_record("CircuitOpenError", "permanent"))

    def test_unknown_schema_version_fails_loud(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        header = {"format": JOURNAL_FORMAT, "version": 99, "created": 0}
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
        with pytest.raises(JournalVersionError, match="99"):
            BatchJournal(path, resume=True)

    def test_foreign_file_fails_loud(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "something-else", "version": 1}\n')
        with pytest.raises(JournalError):
            BatchJournal(path, resume=True)

    def test_torn_tail_truncates_and_continues(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.record_completion("k2", _ok_record(2))
        # Simulate dying mid-write: a partial record with no newline.
        with open(path, "ab") as handle:
            handle.write(b'{"type": "completion", "key": "k3", "reco')
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2"}
            assert journal.recovered_drops == 1
            # The torn bytes are gone and the journal accepts appends.
            journal.record_completion("k3", _ok_record(3))
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2", "k3"}
            assert journal.recovered_drops == 0

    def test_complete_final_line_is_not_torn(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
        with BatchJournal(path, resume=True) as journal:
            assert journal.recovered_drops == 0
            assert set(journal.completed) == {"k1"}

    def test_mid_file_corruption_keeps_the_records_after_it(self, tmp_path):
        from repro.service.journal import record_crc

        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
        with open(path, "ab") as handle:
            handle.write(b"\x00garbage\n")
        # A good record *after* the garbage line survives: corruption is
        # quarantined per-line, not amplified into dropping the suffix.
        good = {
            "type": "completion",
            "key": "k2",
            "kind": "intra",
            "category": None,
            "at": 0,
            "crc": record_crc("k2", _ok_record(2)),
            "record": _ok_record(2),
        }
        with open(path, "ab") as handle:
            handle.write(json.dumps(good).encode("utf-8") + b"\n")
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2"}
            assert journal.corrupt_quarantined == 1
            assert journal.recovered_drops == 0
        # The rewrite preserved both good records.
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2"}
            assert journal.corrupt_quarantined == 0

    def test_corruption_quarantines_and_rewrites_clean(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.record_completion("k2", _ok_record(2))
            journal.record_completion("k3", _ok_record(3))
        # Flip one byte inside k2's record: the line stays valid JSON,
        # only the CRC can catch it.
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        assert b'"k2"' in lines[2]
        assert b'"memory_access":2' in lines[2]
        lines[2] = lines[2].replace(b'"memory_access":2', b'"memory_access":9')
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with BatchJournal(path, resume=True) as journal:
            # The corrupt record is quarantined and counted; the good
            # records before AND after it are kept.
            assert set(journal.completed) == {"k1", "k3"}
            assert journal.corrupt_quarantined == 1
            assert journal.recovered_drops == 0
            quarantine = journal.quarantine_path
        with open(quarantine, "rb") as handle:
            assert b'"k2"' in handle.read()
        # The journal was rewritten clean: reopening does not
        # re-quarantine the same line.
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k3"}
            assert journal.corrupt_quarantined == 0

    def test_crc_covers_the_key_not_just_the_record(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
        with open(path, "rb") as handle:
            data = handle.read()
        # Graft the record onto a different key: the record bytes are
        # intact, so only a key-covering checksum can object.
        with open(path, "wb") as handle:
            handle.write(data.replace(b'"key":"k1"', b'"key":"kX"'))
        with BatchJournal(path, resume=True) as journal:
            assert journal.completed == {}
            assert journal.corrupt_quarantined == 1

    def test_v1_journal_still_loads_and_compaction_upgrades_it(
        self, tmp_path
    ):
        path = str(tmp_path / "batch.journal")
        header = {"format": JOURNAL_FORMAT, "version": 1, "created": 0}
        completion = {
            "type": "completion",
            "key": "k1",
            "kind": "intra",
            "category": None,
            "at": 0,
            "record": _ok_record(1),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps(completion) + "\n")
        with BatchJournal(path, resume=True) as journal:
            # Pre-CRC records load unverified rather than quarantined.
            assert set(journal.completed) == {"k1"}
            assert journal.corrupt_quarantined == 0
            journal.compact()
        with open(path, "r", encoding="utf-8") as handle:
            new_header = json.loads(handle.readline())
            record_line = json.loads(handle.readline())
        assert new_header["version"] == JOURNAL_SCHEMA_VERSION
        assert "crc" in record_line

    def test_corrupt_header_quarantines_whole_file(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(b"\x00" + data)
        with BatchJournal(path, resume=True) as journal:
            assert journal.completed == {}
            assert journal.corrupt_quarantined == 2
            assert os.path.exists(journal.quarantine_path)
            journal.record_completion("k2", _ok_record(2))
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k2"}

    def test_torn_header_restarts_the_journal(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with open(path, "wb") as handle:
            handle.write(b'{"format": "repro-batch-jou')
        with BatchJournal(path, resume=True) as journal:
            assert len(journal) == 0
            journal.record_completion("k1", _ok_record(1))
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}

    def test_heartbeats_are_ignored_on_replay(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.heartbeat(completed=1, note="stall watchdog")
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}

    def test_closed_journal_rejects_appends(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError, match="closed"):
            journal.record_completion("k1", _ok_record(1))

    def test_stats(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            stats = journal.stats()
        assert stats["completed"] == 1
        assert stats["appended"] == 1
        assert stats["recovered_drops"] == 0
        assert stats["path"] == os.path.abspath(path)
        assert stats["corrupt_quarantined"] == 0
        assert stats["compactions"] == 0
        assert stats["disk_lines"] == 1
        assert stats["file_bytes"] == os.path.getsize(path)
        assert stats["file_bytes"] > 0
        assert stats["replay_seconds"] == 0.0

    def test_replay_progress_lines(self, tmp_path, monkeypatch):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path, fsync=False) as journal:
            for index in range(7):
                journal.record_completion(f"k{index}", _ok_record(index))
        monkeypatch.setattr(BatchJournal, "REPLAY_PROGRESS_EVERY", 3)
        messages = []
        with BatchJournal(path, resume=True, log=messages.append) as journal:
            assert len(journal) == 7
            assert journal.stats()["replay_seconds"] > 0.0
        progress = [m for m in messages if "replaying" in m]
        assert len(progress) == 2  # at 3 and at 6 of 7
        assert any("replayed" in m for m in messages)  # final summary


# ----------------------------------------------------------------------
# Crash-safe compaction
# ----------------------------------------------------------------------
class TestJournalCompaction:
    def test_compact_dedupes_and_drops_heartbeats(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path, fsync=False) as journal:
            for index in range(6):
                journal.record_completion(f"k{index}", _ok_record(index))
            for index in range(3):  # superseded rewrites
                journal.record_completion(f"k{index}", _ok_record(100 + index))
            journal.heartbeat(completed=6)
            assert journal.disk_lines == 10
            before = os.path.getsize(path)
            summary = journal.compact()
            assert summary["records"] == 6
            assert summary["before_lines"] == 10
            assert journal.disk_lines == 6
            assert journal.compactions == 1
            assert os.path.getsize(path) < before
            # The journal stays appendable through the handle swap.
            journal.record_completion("k9", _ok_record(9))
        with BatchJournal(path, resume=True) as journal:
            assert len(journal) == 7
            # Latest-write-wins survived the rewrite.
            assert journal.completed["k1"]["result"]["memory_access"] == 101
            assert journal.corrupt_quarantined == 0

    def test_maybe_compact_respects_threshold_and_reclaim(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path, fsync=False, compact_max_records=4) as journal:
            for index in range(5):
                journal.record_completion(f"k{index}", _ok_record(index))
            # Over threshold but nothing reclaimable: no thrash.
            assert journal.maybe_compact() is None
            for index in range(5):
                journal.record_completion(f"k{index}", _ok_record(index))
            # Over threshold AND half the lines are duplicates.
            summary = journal.maybe_compact()
            assert summary is not None
            assert summary["records"] == 5
            assert journal.compactions == 1

    def test_maybe_compact_disabled_without_thresholds(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path, fsync=False) as journal:
            for _ in range(3):
                journal.record_completion("k1", _ok_record(1))
            assert journal.maybe_compact() is None
            assert journal.compactions == 0

    def test_compact_max_bytes_threshold(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path, fsync=False, compact_max_bytes=64) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.record_completion("k1", _ok_record(2))
            assert journal.maybe_compact() is not None

    def test_degraded_journal_refuses_to_compact(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.record_completion("k1", _ok_record(2))
            journal.inject_write_fault("enospc")
            journal.record_completion("k2", _ok_record(3))
            assert journal.degraded
            assert journal.compact() is None
            assert journal.compactions == 0
        # The on-disk pre-fault prefix is untouched.
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}

    def test_stale_compact_tmp_is_removed_on_open(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
        with open(path + ".compact.tmp", "wb") as handle:
            handle.write(b"half-written garbage")
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}
        assert not os.path.exists(path + ".compact.tmp")

    def test_inject_compact_kill_rejects_unknown_step(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            with pytest.raises(ValueError, match="step"):
                journal.inject_compact_kill("sharknado")

    @pytest.mark.parametrize(
        "step", ["pre_tmp", "mid_write", "pre_rename", "post_rename"]
    )
    def test_sigkill_at_every_compaction_step_loses_nothing(
        self, tmp_path, step
    ):
        """The acceptance bar: die anywhere inside compact(), lose nothing."""
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path, fsync=False) as journal:
            for index in range(8):
                journal.record_completion(f"k{index}", _ok_record(index))
            for index in range(4):
                journal.record_completion(f"k{index}", _ok_record(100 + index))
            journal.heartbeat(completed=8)
            expected = dict(journal.completed)

        pid = os.fork()
        if pid == 0:  # child: compact with an armed SIGKILL, never returns
            try:
                child = BatchJournal(
                    path, resume=True, fsync=False, log=lambda _msg: None
                )
                child.inject_compact_kill(step)
                child.compact()
            finally:
                os._exit(3)  # reached only if the kill failed to fire
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == signal.SIGKILL

        # The kernel freed the corpse's flock; the journal reopens with
        # every durable completion intact (old file or new file, both
        # fully valid) and no quarantine.
        with BatchJournal(path, resume=True) as journal:
            assert journal.completed == expected
            assert journal.corrupt_quarantined == 0
        assert not os.path.exists(path + ".compact.tmp")

    def test_handoff_export_carries_crc_and_ingest_verifies(self, tmp_path):
        path_a = str(tmp_path / "a.journal")
        path_b = str(tmp_path / "b.journal")
        with BatchJournal(path_a) as source:
            source.record_completion("k1", _ok_record(1))
            entries = source.export_handoff(lambda key: True)
        assert all("crc" in entry for entry in entries)
        with BatchJournal(path_b) as target:
            assert target.ingest_handoff(entries) == (1, 0)
            entries[0]["record"]["result"]["memory_access"] = 999
            with pytest.raises(JournalError, match="crc"):
                target.ingest_handoff(
                    [{**entries[0], "key": "k-tampered"}]
                )


class TestCompactionPreservesDurableSet:
    """Hypothesis: compaction == latest-write-wins durable completions."""

    _KEYS = ("k1", "k2", "k3", "k4")
    _OPS = st.lists(
        st.tuples(
            st.sampled_from(_KEYS),
            st.sampled_from(
                ["ok_low", "ok_high", "permanent", "transient", "heartbeat"]
            ),
        ),
        max_size=30,
    )

    @staticmethod
    def _record_for(op, serial):
        if op == "ok_low":
            return _ok_record(serial)
        if op == "ok_high":
            return _ok_record(1000 + serial)
        if op == "permanent":
            return _error_record("InfeasibleError", "permanent")
        return _error_record("DeadlineExceededError", "transient")

    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None)
    def test_property(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "batch.journal")
            expected = {}
            with BatchJournal(path, fsync=False) as journal:
                for serial, (key, op) in enumerate(ops):
                    if op == "heartbeat":
                        journal.heartbeat(completed=serial)
                        continue
                    record = self._record_for(op, serial)
                    journal.record_completion(key, record)
                    if _durable(record):
                        expected[key] = record
                journal.compact()
                assert journal.completed == expected
                assert journal.disk_lines == len(expected)
            with BatchJournal(path, resume=True) as journal:
                assert journal.completed == expected
                assert journal.corrupt_quarantined == 0


# ----------------------------------------------------------------------
# Offline integrity checking (repro fsck)
# ----------------------------------------------------------------------
class TestFsck:
    def test_clean_journal(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.record_completion("k1", _ok_record(2))
            journal.record_completion("k2", _ok_record(3))
            journal.heartbeat(completed=2)
        report = fsck_file(path)
        assert report["kind"] == "journal"
        assert report["status"] == "clean"
        assert report["exit_code"] == 0
        assert report["completion_lines"] == 3
        assert report["unique_keys"] == 2
        assert report["duplicate_lines"] == 1
        assert report["durable_records"] == 2
        assert report["heartbeat_lines"] == 1

    def test_flipped_byte_is_found_named_and_repaired(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.record_completion("k2", _ok_record(2))
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data.replace(b'"memory_access":2', b'"memory_access":7'))
        report = fsck_file(path)
        assert report["status"] == "problems"
        assert report["exit_code"] == 1
        (corrupt,) = report["corrupt"]
        assert corrupt["key"] == "k2"
        assert "crc mismatch" in corrupt["reason"]
        assert corrupt["line"] == 3
        repaired = fsck_file(path, repair=True)
        assert repaired["repaired"]
        assert repaired["quarantined"] == 1
        assert repaired["durable_records"] == 1
        assert fsck_file(path)["status"] == "clean"
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}

    def test_torn_tail_reports_problems(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
        with open(path, "ab") as handle:
            handle.write(b'{"type": "completion", "key": "k2", "reco')
        report = fsck_file(path)
        assert report["exit_code"] == 1
        assert len(report["torn"]) == 1

    def test_foreign_and_missing_files_are_fatal(self, tmp_path):
        foreign = str(tmp_path / "foreign.json")
        with open(foreign, "w", encoding="utf-8") as handle:
            handle.write('{"format": "something-else", "version": 1}\n')
        assert fsck_file(foreign)["exit_code"] == 2
        assert fsck_file(str(tmp_path / "absent.journal"))["exit_code"] == 2

    def test_live_locked_journal_is_fatal(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            report = fsck_file(path)
            assert report["exit_code"] == 2
            assert "locked" in report["detail"]

    def test_cache_file_light_check(self, tmp_path):
        path = str(tmp_path / "results.cache")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"version": 2, "entries": [["k1", _ok_record(1)]]}, handle
            )
        report = fsck_file(path)
        assert report["kind"] == "cache"
        assert report["exit_code"] == 0
        assert report["completion_lines"] == 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": 2, "entries": [["k1", "not-a-dict"]]}, handle)
        assert fsck_file(path)["exit_code"] == 1


# ----------------------------------------------------------------------
# Write-failure taxonomy and loud non-durable degraded mode
# ----------------------------------------------------------------------
class TestJournalDegradedMode:
    def test_classify_write_error_taxonomy(self):
        import errno

        from repro.service.journal import classify_write_error

        assert classify_write_error(OSError(errno.ENOSPC, "x")) == "disk_full"
        assert classify_write_error(OSError(errno.EDQUOT, "x")) == "disk_full"
        assert classify_write_error(OSError(errno.EIO, "x")) == "io_error"
        assert classify_write_error(OSError(errno.EROFS, "x")) == "read_only"
        assert classify_write_error(OSError(errno.EACCES, "x")) == "os_error"

    def test_enospc_degrades_instead_of_raising(self, tmp_path, capsys):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            assert journal.record_completion("k1", _ok_record(1))
            journal.inject_write_fault("enospc")
            # The armed fault fires inside the append; the journal must
            # NOT raise -- it degrades and keeps the in-memory answer.
            assert not journal.record_completion("k2", _ok_record(2))
            assert journal.degraded
            assert journal.degraded_reason == "disk_full"
            assert set(journal.completed) == {"k1", "k2"}
            # Degraded journals drop later appends silently (no retries
            # against a full disk) but stay correct in memory.
            assert not journal.record_completion("k3", _ok_record(3))
            assert set(journal.completed) == {"k1", "k2", "k3"}
            stats = journal.stats()
            assert stats["degraded"] is True
            assert stats["degraded_reason"] == "disk_full"
            assert stats["write_errors"] == 1
            assert stats["appended"] == 1
        err = capsys.readouterr().err
        assert "DEGRADED" in err
        assert "disk_full" in err

    def test_degraded_journal_reopens_with_durable_prefix(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.record_completion("k1", _ok_record(1))
            journal.inject_write_fault("eio")
            journal.record_completion("k2", _ok_record(2))
            assert journal.degraded_reason == "io_error"
        # Only the pre-fault completion survived on disk; after the
        # volume is "fixed" (the fault was one-shot) appends work again.
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}
            assert not journal.degraded
            assert journal.record_completion("k2", _ok_record(2))
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2"}

    def test_partial_write_then_enospc_truncates_on_reopen(self, tmp_path):
        """A torn line from a mid-write ENOSPC is recovered like a crash."""
        import errno

        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        journal.record_completion("k1", _ok_record(1))
        handle = journal._handle
        real_write = handle.write

        def partial_write(data):
            # The kernel accepted half the bytes, then the volume filled:
            # exactly the torn-tail shape a real ENOSPC leaves behind.
            real_write(data[: len(data) // 2])
            raise OSError(errno.ENOSPC, "no space left on device")

        handle.write = partial_write
        try:
            assert not journal.record_completion("k2", _ok_record(2))
            assert journal.degraded
            assert journal.degraded_reason == "disk_full"
        finally:
            handle.write = real_write
            journal.close()
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1"}
            assert journal.recovered_drops == 1
            assert journal.record_completion("k2", _ok_record(2))

    def test_raising_fsync_degrades(self, tmp_path, monkeypatch):
        import errno

        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:

            def broken_fsync(fd):
                raise OSError(errno.EIO, "I/O error")

            monkeypatch.setattr(os, "fsync", broken_fsync)
            assert not journal.record_completion("k1", _ok_record(1))
            assert journal.degraded
            assert journal.degraded_reason == "io_error"
            monkeypatch.undo()
            # close() must not raise on a degraded journal either.
        assert journal.closed

    def test_flush_degrades_instead_of_raising(self, tmp_path, monkeypatch):
        import errno

        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        try:

            def broken_fsync(fd):
                raise OSError(errno.ENOSPC, "no space")

            monkeypatch.setattr(os, "fsync", broken_fsync)
            journal.flush()  # must not raise
            assert journal.degraded
            monkeypatch.undo()
        finally:
            journal.close()

    def test_inject_rejects_unknown_mode(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            with pytest.raises(ValueError, match="mode"):
                journal.inject_write_fault("sharknado")

    def test_inject_after_counts_successful_appends(self, tmp_path):
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            journal.inject_write_fault("enospc", after=2)
            assert journal.record_completion("k1", _ok_record(1))
            assert journal.record_completion("k2", _ok_record(2))
            assert not journal.record_completion("k3", _ok_record(3))
            assert journal.degraded
        with BatchJournal(path, resume=True) as journal:
            assert set(journal.completed) == {"k1", "k2"}


# ----------------------------------------------------------------------
# The crash-after-n fault action
# ----------------------------------------------------------------------
class TestExitFault:
    def test_exit_spec_parses(self):
        plan = parse_fault_spec("exit:*:after=3")
        (clause,) = plan.clauses
        assert clause.action == "exit"
        assert clause.after == 3

    def test_after_must_be_positive(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("exit:*:after=0")

    def test_abort_tears_through_except_exception(self):
        assert issubclass(BatchAbortError, BaseException)
        assert not issubclass(BatchAbortError, Exception)

    def test_maybe_abort_waits_for_threshold(self):
        plan = parse_fault_spec("exit:*:after=2")
        plan.maybe_abort(0)
        plan.maybe_abort(1)
        with pytest.raises(BatchAbortError):
            plan.maybe_abort(2)
        # Fires once (times=1 default): the resumed run is not re-killed.
        plan.maybe_abort(5)


# ----------------------------------------------------------------------
# Kill-and-resume through the engine
# ----------------------------------------------------------------------
class TestCrashResume:
    def test_crash_after_n_then_resume_is_byte_identical(self, tmp_path):
        requests = _requests(5)
        clean = BatchEngine(EngineConfig(jobs=1)).run_batch(requests)

        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        try:
            with injected_faults("exit:*:after=2"):
                with pytest.raises(BatchAbortError):
                    BatchEngine(EngineConfig(jobs=1)).run_batch(
                        requests, journal=journal
                    )
        finally:
            journal.close()

        with BatchJournal(path, resume=True) as journal:
            assert len(journal) == 2
            report = BatchEngine(EngineConfig(jobs=1)).run_batch(
                requests, journal=journal
            )
        assert report.replayed == 2
        assert report.computed == 3
        assert _records(report) == _records(clean)
        assert [entry.replayed for entry in report.entries].count(True) == 2

    def test_replay_survives_a_second_resume(self, tmp_path):
        """A fully-journaled batch replays everything and computes nothing."""
        requests = _requests(4)
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            first = BatchEngine(EngineConfig(jobs=1)).run_batch(
                requests, journal=journal
            )
        with BatchJournal(path, resume=True) as journal:
            second = BatchEngine(EngineConfig(jobs=1)).run_batch(
                requests, journal=journal
            )
        assert second.replayed == len(requests)
        assert second.computed == 0
        assert _records(second) == _records(first)
        assert second.journal is not None
        assert second.journal["completed"] == len(requests)

    def test_stop_event_interrupts_resumably(self, tmp_path):
        requests = _requests(5)
        clean = BatchEngine(EngineConfig(jobs=1)).run_batch(requests)

        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)

        class _StopAfter:
            """Cooperative stop once two completions are journaled."""

            signal_name = "SIGTERM"

            def is_set(self):
                return journal.appended >= 2

        try:
            with pytest.raises(BatchInterrupted) as excinfo:
                BatchEngine(EngineConfig(jobs=1)).run_batch(
                    requests, journal=journal, stop_event=_StopAfter()
                )
        finally:
            journal.close()
        assert excinfo.value.journaled == 2
        assert excinfo.value.completed_keys == 2
        assert excinfo.value.total_requests == 5
        assert excinfo.value.signal_name == "SIGTERM"
        assert "resume" in str(excinfo.value)

        with BatchJournal(path, resume=True) as journal:
            report = BatchEngine(EngineConfig(jobs=1)).run_batch(
                requests, journal=journal
            )
        assert report.replayed == 2
        assert _records(report) == _records(clean)

    def test_interrupt_in_pooled_mode_drains_and_resumes(self, tmp_path):
        requests = _requests(6)
        clean = BatchEngine(EngineConfig(jobs=2)).run_batch(requests)

        path = str(tmp_path / "batch.journal")
        journal = BatchJournal(path)
        stop = ShutdownRequested()
        stop.request("SIGINT")  # already set: stops before any dispatch
        try:
            with pytest.raises(BatchInterrupted):
                BatchEngine(EngineConfig(jobs=2)).run_batch(
                    requests, journal=journal, stop_event=stop
                )
        finally:
            journal.close()

        with BatchJournal(path, resume=True) as journal:
            report = BatchEngine(EngineConfig(jobs=2)).run_batch(
                requests, journal=journal
            )
        assert _records(report) == _records(clean)

    def test_replayed_records_backfill_the_cache(self, tmp_path):
        requests = _requests(3)
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            BatchEngine(EngineConfig(jobs=1)).run_batch(
                requests, journal=journal
            )
        engine = BatchEngine(EngineConfig(jobs=1))
        with BatchJournal(path, resume=True) as journal:
            engine.run_batch(requests, journal=journal)
        # The replayed results are now cached: a journal-less rerun on the
        # same engine answers everything from memory.
        report = engine.run_batch(requests)
        assert all(entry.cached for entry in report.entries)
        assert report.computed == 0

    def test_report_renders_journal_line(self, tmp_path):
        requests = _requests(2)
        path = str(tmp_path / "batch.journal")
        with BatchJournal(path) as journal:
            report = BatchEngine(EngineConfig(jobs=1)).run_batch(
                requests, journal=journal
            )
        text = report.render_text()
        assert "journal" in text
        assert "journaled=2" in text


# ----------------------------------------------------------------------
# run_grid checkpointing
# ----------------------------------------------------------------------
class TestRunGridJournal:
    def test_run_grid_resumes_from_its_journal(self, tmp_path):
        from repro.experiments.runner import run_grid

        requests = _requests(4)
        path = str(tmp_path / "grid.journal")
        first = run_grid(requests, journal_path=path)
        # Rerunning the same harness command is the "continue" gesture:
        # the grid journal always resumes.
        second = run_grid(requests, journal_path=path)
        assert second.replayed == len(requests)
        assert _records(second) == _records(first)


# ----------------------------------------------------------------------
# Graceful shutdown guard
# ----------------------------------------------------------------------
class TestShutdownGuard:
    def test_resumable_exit_code_is_distinct(self):
        # 75 == BSD EX_TEMPFAIL; must stay distinct from the batch error
        # (1) and usage error (2) codes.
        assert RESUMABLE_EXIT_CODE == 75

    def test_first_signal_sets_the_event(self):
        before = signal.getsignal(signal.SIGINT)
        with shutdown_guard(announce=False) as stop:
            assert not stop.is_set()
            os.kill(os.getpid(), signal.SIGINT)
            assert stop.wait(timeout=5.0)
            assert stop.signal_name == "SIGINT"
        # Handlers restored no matter how the block exits.
        assert signal.getsignal(signal.SIGINT) == before

    def test_second_signal_escalates(self):
        with pytest.raises(KeyboardInterrupt):
            with shutdown_guard(announce=False) as stop:
                os.kill(os.getpid(), signal.SIGINT)
                stop.wait(timeout=5.0)
                os.kill(os.getpid(), signal.SIGINT)
                # Delivery happens between bytecodes; give it room.
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    time.sleep(0.001)
                pytest.fail("second SIGINT did not escalate")

    def test_request_records_first_signal_only(self):
        stop = ShutdownRequested()
        stop.request("SIGTERM")
        stop.request("SIGINT")
        assert stop.is_set()
        assert stop.signal_name == "SIGTERM"

    def test_degrades_off_the_main_thread(self):
        results = {}

        def worker():
            with shutdown_guard(announce=False) as stop:
                results["is_set"] = stop.is_set()
                stop.request("host")
                results["after"] = stop.is_set()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10.0)
        assert results == {"is_set": False, "after": True}
