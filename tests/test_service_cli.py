"""End-to-end tests: ``repro batch`` CLI and the engine-routed harnesses."""

import json

import pytest

from repro.cli import main
from repro.core import optimize_intra
from repro.experiments import run_grid, run_sweep_grid, sweep_grid_requests
from repro.ir import matmul
from repro.search import searched_fusion_decision
from repro.service import BatchEngine, EngineConfig, intra_request


def _write_requests(path, count=12):
    """A JSON-lines request file with duplicates and one poisoned line."""
    lines = []
    shapes = [(64, 32, 48), (96, 64, 80), (32, 32, 32)]
    for index in range(count):
        m, k, l = shapes[index % len(shapes)]
        buffer_elems = 1024 * (1 + index % 2)
        lines.append(
            json.dumps(
                {"kind": "intra", "m": m, "k": k, "l": l,
                 "buffer_elems": buffer_elems}
            )
        )
    lines.append(
        json.dumps({"kind": "graph_plan", "model": "NotAModel",
                    "buffer_elems": 1024})
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


class TestBatchCommand:
    def test_jobs_invariant_output(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        total = _write_requests(requests)
        assert main(["batch", str(requests), "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["batch", str(requests), "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert len(serial.strip().splitlines()) == total

    def test_output_file_and_stats(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        output = tmp_path / "results.jsonl"
        assert (
            main(["batch", str(requests), "--output", str(output), "--stats"])
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "batch summary" in captured.err
        assert "hit_rate" in captured.err
        records = [
            json.loads(line)
            for line in output.read_text(encoding="utf-8").splitlines()
        ]
        assert [r["index"] for r in records] == list(range(len(records)))
        assert sum(1 for r in records if not r["ok"]) == 1

    def test_warm_cache_file_hit_rate(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        cache_file = tmp_path / "cache.json"
        main(["batch", str(requests), "--cache-file", str(cache_file),
              "--stats"])
        cold = capsys.readouterr()
        assert cache_file.exists()
        main(["batch", str(requests), "--cache-file", str(cache_file),
              "--stats"])
        warm = capsys.readouterr()
        assert warm.out == cold.out  # byte-identical results either way
        # Everything (including the deterministic error) answers from the
        # warmed cache file.
        assert "hit_rate=100.0%" in warm.err
        assert "computed      : 0" in warm.err

    def test_stdin_input(self, tmp_path, capsys, monkeypatch):
        import io

        payload = json.dumps(
            {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096}
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(payload + "\n"))
        assert main(["batch", "-"]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["ok"] is True
        assert record["result"]["memory_access"] > 0

    def test_corrupt_cache_file_ignored(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"kind": "intra", "m": 64, "k": 32, "l": 48,
                        "buffer_elems": 4096}) + "\n",
            encoding="utf-8",
        )
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("garbage not json", encoding="utf-8")
        assert main(["batch", str(requests), "--cache-file",
                     str(cache_file)]) == 0
        captured = capsys.readouterr()
        assert "ignoring unreadable cache file" in captured.err
        assert json.loads(captured.out.strip())["ok"] is True
        # The save pass repairs the file for the next run.
        from repro.service import CACHE_SCHEMA_VERSION

        persisted = json.loads(cache_file.read_text(encoding="utf-8"))
        assert persisted["version"] == CACHE_SCHEMA_VERSION
        assert len(persisted["entries"]) == 1

    def test_malformed_line_isolated(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "this is not json\n"
            + json.dumps({"kind": "intra", "m": 64, "k": 32, "l": 48,
                          "buffer_elems": 4096})
            + "\n",
            encoding="utf-8",
        )
        assert main(["batch", str(requests)]) == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert [r["ok"] for r in records] == [False, True]


class TestResilienceCli:
    """``--strict``, fault injection arming, and ``repro selfcheck``."""

    @pytest.fixture(autouse=True)
    def _isolated_fault_state(self, monkeypatch):
        from repro.service import FAULTS_ENV, reset_fault_state

        # Pre-seat the variable so monkeypatch restores it even though the
        # CLI (not the test) is what overwrites it.
        monkeypatch.setenv(FAULTS_ENV, "")
        reset_fault_state()
        yield
        reset_fault_state()

    def test_strict_turns_errors_into_exit_code(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        total = _write_requests(requests)
        assert main(["batch", str(requests)]) == 0  # default: report only
        relaxed = capsys.readouterr()
        assert f"1 of {total} request(s) failed" in relaxed.err
        assert main(["batch", str(requests), "--strict"]) == 1
        strict = capsys.readouterr()
        assert strict.out == relaxed.out  # same records either way

    def test_error_count_printed_with_stats(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        total = _write_requests(requests)
        assert main(["batch", str(requests), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "batch summary" in err
        assert f"1 of {total} request(s) failed" in err

    def test_inject_faults_requires_guard_env(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.service import FAULTS_GUARD_ENV

        monkeypatch.delenv(FAULTS_GUARD_ENV, raising=False)
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        rc = main(["batch", str(requests), "--inject-faults", "raise:*"])
        assert rc == 2
        captured = capsys.readouterr()
        assert FAULTS_GUARD_ENV in captured.err
        assert captured.out == ""  # refused before running anything

    def test_inject_faults_rejects_bad_spec(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.service import FAULTS_GUARD_ENV

        monkeypatch.setenv(FAULTS_GUARD_ENV, "1")
        requests = tmp_path / "requests.jsonl"
        _write_requests(requests)
        rc = main(["batch", str(requests), "--inject-faults", "explode:*"])
        assert rc == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_inject_faults_armed_and_retried(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.service import FAULTS_GUARD_ENV

        monkeypatch.setenv(FAULTS_GUARD_ENV, "1")
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"kind": "intra", "m": 64, "k": 32, "l": 48,
                        "buffer_elems": 4096}) + "\n",
            encoding="utf-8",
        )
        rc = main([
            "batch", str(requests), "--strict", "--stats",
            "--max-attempts", "2",
            "--inject-faults", "raise:intra*:times=1:category=transient",
        ])
        assert rc == 0  # the injected transient fault was retried away
        captured = capsys.readouterr()
        assert json.loads(captured.out.strip())["ok"] is True
        assert "retries=1" in captured.err

    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "selfcheck ok" in capsys.readouterr().out

    def test_selfcheck_stats(self, capsys):
        assert main(["selfcheck", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "selfcheck ok" in captured.out
        assert "batch summary" in captured.err


class TestEngineRoutedHarnesses:
    def test_run_grid_shares_engine_cache(self):
        engine = BatchEngine(EngineConfig(jobs=2))
        requests = [intra_request(64, 32, 48, 4096),
                    intra_request(96, 64, 80, 4096)]
        run_grid(requests, engine=engine)
        warm = run_grid(requests, engine=engine)
        assert warm.computed == 0
        assert warm.cache.hit_rate == 1.0

    def test_run_sweep_grid_matches_direct(self):
        ops = [matmul("a", 96, 64, 80), matmul("b", 64, 32, 48)]
        grid = (1024, 4096)
        points = run_sweep_grid(ops, buffer_sweep_bytes=grid, jobs=2)
        assert len(points) == len(ops) * len(grid)
        for point, op in zip(points[:2], [ops[0]] * 2):
            direct = optimize_intra(op, point.buffer_bytes)
            assert point.memory_access == direct.memory_access
        assert [p.operator for p in points] == ["a", "a", "b", "b"]

    def test_run_sweep_grid_captures_infeasible(self):
        points = run_sweep_grid(
            [matmul("a", 64, 32, 48)], buffer_sweep_bytes=(1,)
        )
        assert points[0].memory_access is None
        assert points[0].error is not None

    def test_sweep_grid_requests_rejects_non_matmul(self):
        from repro.ir import TensorOperator  # noqa: F401 - import check only
        from repro.workloads import build_layer_graph, model_by_name

        graph = build_layer_graph(model_by_name("Bert"))
        softmax_like = [
            op for op in graph.topological_order()
            if set(op.dims) != {"M", "K", "L"}
        ]
        if not softmax_like:  # pragma: no cover - model always has one
            pytest.skip("no non-matmul operator in graph")
        with pytest.raises(ValueError):
            sweep_grid_requests(softmax_like[:1], (1024,))

    def test_searched_fusion_decision(self):
        op1 = matmul("mm1", 64, 32, 48)
        op2 = matmul("mm2", 64, 48, 40, a=op1.output)
        decision = searched_fusion_decision(
            [op1, op2], 8192, method="exhaustive"
        )
        direct = sum(
            optimize_intra(op, 8192).memory_access for op in (op1, op2)
        )
        assert decision.unfused_memory_access == direct
        assert decision.fused is not None
        assert decision.profitable == (
            decision.fused.memory_access < direct
        )
        assert "searched-exhaustive" in decision.describe()

    def test_searched_fusion_unknown_method(self):
        op1 = matmul("mm1", 8, 8, 8)
        op2 = matmul("mm2", 8, 8, 8, a=op1.output)
        with pytest.raises(ValueError):
            searched_fusion_decision([op1, op2], 64, method="quantum")
