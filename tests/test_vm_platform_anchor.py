"""Anchor test: the analytical platform comparison, re-run on the VM.

A miniature Fig. 10: each platform's *chosen dataflows* for a small
workload are executed with real data through the dataflow VMs, and the
measured memory traffic must (a) equal the analytical prediction per
operator and (b) reproduce the platform ordering the analytical comparison
reports.  This ties the headline figure to the operational substrate.
"""

import numpy as np
import pytest

from repro.arch import (
    ALL_PLATFORMS,
    MemorySpec,
    constrained_intra,
    execute_fused_pair,
    execute_matmul_dataflow,
    fusecu,
    validate_against_analytical,
)
from repro.core import optimize_fused, optimize_graph
from repro.ir import matmul

#: Small enough to execute, big enough to differentiate platforms.
SHAPES = {
    "proj": (48, 16, 24),
    "qk": (32, 8, 32),
    "av": (32, 32, 8),
}
MEMORY = MemorySpec(buffer_bytes=600)  # a few hundred elements


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(42)
    data = {}
    for name, (m, k, l) in SHAPES.items():
        data[name] = (
            rng.normal(size=(m, k)),
            rng.normal(size=(k, l)),
        )
    return data


class TestPerOperatorAnchors:
    def test_every_platform_dataflow_realized(self, operands):
        """Each platform's chosen dataflow executes with exactly the
        predicted traffic on every operator."""
        for factory in ALL_PLATFORMS:
            spec = factory(MEMORY)
            for name, (m, k, l) in SHAPES.items():
                op = matmul(name, m, k, l)
                dataflow, report, _label = constrained_intra(op, spec)
                a, b = operands[name]
                matches, comparison = validate_against_analytical(
                    op, dataflow, a, b
                )
                assert matches, (spec.name, name, comparison)

    def test_platform_ordering_reproduced_on_vm(self, operands):
        """Measured total traffic orders the platforms the same way the
        analytical model does."""
        analytical = {}
        measured = {}
        for factory in ALL_PLATFORMS:
            spec = factory(MEMORY)
            total_pred = 0
            total_meas = 0
            for name, (m, k, l) in SHAPES.items():
                op = matmul(name, m, k, l)
                dataflow, report, _ = constrained_intra(op, spec)
                a, b = operands[name]
                execution = execute_matmul_dataflow(op, dataflow, a, b)
                total_pred += report.total
                total_meas += sum(execution.traffic.reads.values()) + sum(
                    execution.traffic.writes.values()
                )
            analytical[spec.name] = total_pred
            measured[spec.name] = total_meas
        order_analytical = sorted(analytical, key=analytical.get)
        order_measured = sorted(measured, key=measured.get)
        assert order_analytical == order_measured


class TestFusedAnchor:
    def test_fusecu_fused_chain_realized(self):
        """FuseCU's fused plan for a chain executes with the predicted
        traffic and beats the measured unfused execution."""
        rng = np.random.default_rng(7)
        m, k, l, n = 32, 8, 32, 8
        op1 = matmul("mm1", m, k, l)
        op2 = matmul("mm2", m, l, n, a=op1.output)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        d = rng.normal(size=(l, n))
        budget = MEMORY.buffer_elems
        fused = optimize_fused([op1, op2], budget)
        assert fused is not None
        execution = execute_fused_pair(op1, op2, fused.dataflow, a, b, d)
        assert np.allclose(execution.output, (a @ b) @ d)
        fused_measured = sum(execution.traffic.reads.values()) + sum(
            execution.traffic.writes.values()
        )
        assert fused_measured == fused.report.per_instance_total
        # Unfused: two separate optimal executions + the C round trip.
        from repro.core import optimize_intra

        r1 = optimize_intra(op1, budget)
        r2 = optimize_intra(op2, budget)
        e1 = execute_matmul_dataflow(op1, r1.dataflow, a, b)
        c = e1.output
        e2 = execute_matmul_dataflow(op2, r2.dataflow, c, d)
        unfused_measured = sum(
            sum(e.traffic.reads.values()) + sum(e.traffic.writes.values())
            for e in (e1, e2)
        )
        assert fused_measured < unfused_measured
