"""Tests for communication lower bounds and the MA(BS) curve."""

import pytest

from repro.core import (
    BufferRegime,
    closed_form_curve,
    intra_lower_bound,
    shift_point_band,
    three_nra_threshold,
)
from repro.ir import matmul


class TestIntraLowerBound:
    def test_matches_optimizer(self):
        from repro.core import optimize_intra

        op = matmul("mm", 96, 64, 80)
        assert intra_lower_bound(op, 2000) == optimize_intra(op, 2000).memory_access

    def test_floor_is_ideal(self):
        op = matmul("mm", 96, 64, 80)
        assert intra_lower_bound(op, 10**7) == op.ideal_memory_access()


class TestCurve:
    def test_curve_monotone_nonincreasing(self):
        op = matmul("mm", 128, 96, 112)
        sweep = [2 ** i for i in range(6, 18)]
        points = closed_form_curve(op, sweep)
        for earlier, later in zip(points, points[1:]):
            assert later.memory_access <= earlier.memory_access

    def test_curve_regimes_progress(self):
        op = matmul("mm", 128, 96, 112)
        sweep = [2 ** i for i in range(6, 18)]
        points = closed_form_curve(op, sweep)
        order = [
            BufferRegime.TINY,
            BufferRegime.SMALL,
            BufferRegime.MEDIUM,
            BufferRegime.LARGE,
        ]
        indices = [order.index(p.regime) for p in points]
        assert indices == sorted(indices)
        assert points[-1].regime is BufferRegime.LARGE

    def test_curve_flat_after_tensor_min(self):
        """Beyond the Three-NRA threshold MA stays at the ideal."""
        op = matmul("mm", 128, 96, 112)
        threshold = three_nra_threshold(op)
        points = closed_form_curve(op, [threshold * 2, threshold * 8])
        assert points[0].memory_access == points[1].memory_access
        assert points[0].memory_access == op.ideal_memory_access()


class TestShiftPoints:
    def test_band_formula(self):
        op = matmul("mm", 128, 96, 112)
        low, high = shift_point_band(op)
        assert low == 96 * 96 / 4
        assert high == 96 * 96 / 2

    def test_three_nra_threshold_is_smallest_tensor(self):
        op = matmul("mm", 128, 96, 112)
        assert three_nra_threshold(op) == 96 * 112  # B

    def test_single_dominates_below_band_two_above(self):
        """Sec. III-A4: the Single->Two shift lies inside the band."""
        from repro.core import optimize_intra
        from repro.dataflow import NRAClass

        op = matmul("mm", 128, 96, 112)
        low, high = shift_point_band(op)
        below = optimize_intra(op, int(low * 0.3)).nra_class
        above = optimize_intra(op, int(high * 1.5)).nra_class
        assert below is NRAClass.SINGLE
        assert above in (NRAClass.TWO, NRAClass.THREE)
