"""Tests for the fused attention executor (online softmax over tiles)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.attention_execution import (
    execute_fused_attention,
    fused_attention_traffic_model,
    reference_attention,
)


def problem(seed=0, seq_q=24, seq_k=32, head_dim=8, out_dim=8):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(seq_q, head_dim)),
        rng.normal(size=(seq_k, head_dim)),
        rng.normal(size=(seq_k, out_dim)),
    )


class TestNumerics:
    def test_exact_for_full_tiles(self):
        q, k, v = problem()
        result = execute_fused_attention(q, k, v, tile_m=24, tile_l=32)
        assert np.allclose(result.output, reference_attention(q, k, v))

    @pytest.mark.parametrize("tile_m,tile_l", [(1, 1), (4, 8), (7, 5), (24, 3)])
    def test_exact_for_any_tiling(self, tile_m, tile_l):
        """Online softmax makes every L tiling exact -- the fused dataflow
        is not an approximation."""
        q, k, v = problem()
        result = execute_fused_attention(q, k, v, tile_m=tile_m, tile_l=tile_l)
        assert np.allclose(result.output, reference_attention(q, k, v))

    @given(st.integers(0, 10**6), st.integers(1, 16), st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_exact_random(self, seed, tile_m, tile_l):
        q, k, v = problem(seed, seq_q=13, seq_k=17, head_dim=5, out_dim=6)
        result = execute_fused_attention(
            q, k, v, tile_m=min(tile_m, 13), tile_l=min(tile_l, 17)
        )
        assert np.allclose(result.output, reference_attention(q, k, v))

    def test_extreme_scores_stable(self):
        """Large score magnitudes: the running-max rescaling must not
        overflow (the reason online softmax subtracts the max)."""
        q, k, v = problem()
        q = q * 50.0
        result = execute_fused_attention(q, k, v, tile_m=6, tile_l=8)
        assert np.allclose(result.output, reference_attention(q, k, v))

    def test_invalid_shapes(self):
        q, k, v = problem()
        with pytest.raises(ValueError, match="inconsistent"):
            execute_fused_attention(q, k[:, :4], v, 4, 4)
        with pytest.raises(ValueError, match="tile"):
            execute_fused_attention(q, k, v, 0, 4)


class TestTraffic:
    def test_scores_never_travel(self):
        q, k, v = problem()
        result = execute_fused_attention(q, k, v, tile_m=6, tile_l=8)
        assert result.score_traffic == 0

    def test_traffic_matches_model(self):
        seq_q, seq_k, head_dim, out_dim = 24, 32, 8, 8
        q, k, v = problem(0, seq_q, seq_k, head_dim, out_dim)
        for tile_m in (4, 6, 24):
            result = execute_fused_attention(q, k, v, tile_m=tile_m, tile_l=8)
            model = fused_attention_traffic_model(
                seq_q, seq_k, head_dim, out_dim, tile_m
            )
            assert result.traffic.reads["Q"] == model["Q"]
            assert result.traffic.reads["K"] == model["K"]
            assert result.traffic.reads["V"] == model["V"]
            assert result.traffic.writes["O"] == model["O"]

    def test_fused_traffic_beats_unfused_intermediates(self):
        """The fused execution's total traffic is far below what writing
        and re-reading the S x S score/probability matrices would cost."""
        seq = 64
        q, k, v = problem(0, seq, seq, 8, 8)
        result = execute_fused_attention(q, k, v, tile_m=16, tile_l=16)
        fused_total = sum(result.traffic.reads.values()) + sum(
            result.traffic.writes.values()
        )
        intermediate_round_trips = 2 * seq * seq * 2  # S and P, write+read
        assert fused_total < intermediate_round_trips
