"""Tests for the fused execution engine (Sec. III-B made operational)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import execute_fused_pair, validate_fused_against_analytical
from repro.core import optimize_fused, profitable_patterns, solve_pattern
from repro.dataflow import FusedChain
from repro.ir import matmul


def chain_problem(seed=0, m=16, k=8, l=12, n=10):
    rng = np.random.default_rng(seed)
    op1 = matmul("mm1", m, k, l)
    op2 = matmul("mm2", m, l, n, a=op1.output)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, l))
    d = rng.normal(size=(l, n))
    return op1, op2, a, b, d


class TestFusedNumerics:
    def test_all_feasible_patterns_exact(self):
        op1, op2, a, b, d = chain_problem()
        chain = FusedChain.from_ops([op1, op2])
        reference = (a @ b) @ d
        checked = 0
        for budget in (120, 400, 2000):
            for pattern in profitable_patterns(chain):
                dataflow = solve_pattern(chain, pattern, budget)
                if dataflow is None:
                    continue
                result = execute_fused_pair(op1, op2, dataflow, a, b, d)
                assert np.allclose(result.output, reference), pattern.label
                checked += 1
        assert checked >= 10

    def test_shape_mismatch_rejected(self):
        op1, op2, a, b, d = chain_problem()
        chain = FusedChain.from_ops([op1, op2])
        dataflow = solve_pattern(chain, profitable_patterns(chain)[0], 400)
        with pytest.raises(ValueError, match="mismatch"):
            execute_fused_pair(op1, op2, dataflow, a.T, b, d)


class TestFusedTraffic:
    def test_intermediate_never_moves(self):
        op1, op2, a, b, d = chain_problem()
        chain = FusedChain.from_ops([op1, op2])
        for pattern in profitable_patterns(chain):
            dataflow = solve_pattern(chain, pattern, 400)
            if dataflow is None:
                continue
            result = execute_fused_pair(op1, op2, dataflow, a, b, d)
            assert result.intermediate_traffic == 0, pattern.label

    def test_traffic_matches_analytical_per_pattern(self):
        op1, op2, a, b, d = chain_problem()
        chain = FusedChain.from_ops([op1, op2])
        for budget in (120, 400, 2000):
            for pattern in profitable_patterns(chain):
                dataflow = solve_pattern(chain, pattern, budget)
                if dataflow is None:
                    continue
                matches, comparison = validate_fused_against_analytical(
                    op1, op2, dataflow, a, b, d
                )
                assert matches, (pattern.label, budget, comparison)

    def test_optimizer_result_realized(self):
        """The best fused dataflow's predicted MA is exactly realized."""
        op1, op2, a, b, d = chain_problem(m=24, k=12, l=20, n=16)
        result = optimize_fused([op1, op2], 600)
        assert result is not None
        matches, comparison = validate_fused_against_analytical(
            op1, op2, result.dataflow, a, b, d
        )
        assert matches, comparison
        measured_total = sum(measured for measured, _ in comparison.values())
        assert measured_total == result.report.per_instance_total

    @given(st.integers(0, 10**6), st.integers(60, 3000))
    @settings(max_examples=20, deadline=None)
    def test_random_chains(self, seed, budget):
        rng = np.random.default_rng(seed)
        m, k, l, n = (int(v) for v in rng.integers(2, 20, size=4))
        op1, op2, a, b, d = chain_problem(seed, m, k, l, n)
        chain = FusedChain.from_ops([op1, op2])
        for pattern in profitable_patterns(chain):
            dataflow = solve_pattern(chain, pattern, budget)
            if dataflow is None:
                continue
            result = execute_fused_pair(op1, op2, dataflow, a, b, d)
            assert np.allclose(result.output, (a @ b) @ d)
            matches, comparison = validate_fused_against_analytical(
                op1, op2, dataflow, a, b, d
            )
            assert matches, (pattern.label, (m, k, l, n), budget, comparison)
