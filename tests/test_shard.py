"""The sharded serving tier: byte-identity, resilience, aggregation.

Most tests drive :class:`ShardedApp.handle` directly (real worker
processes, no sockets -- the HTTP transport has its own suite); one
end-to-end test goes through :class:`ShardedServer` + the real client.
The two pivotal claims:

* batch responses are byte-identical to a direct ``run_batch`` for ANY
  shard count, and
* SIGKILLing a shard mid-batch loses nothing -- the slot respawns, the
  successor replays the dead worker's journal, and the batch completes
  with identical bytes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.server import ReproClient, ServerConfig
from repro.service import (
    FAULTS_GUARD_ENV,
    BatchEngine,
    EngineConfig,
    injected_faults,
    parse_request,
)
from repro.shard import (
    HotKeyTracker,
    RespawnPolicy,
    ShardedApp,
    ShardedServer,
    ownership_delta,
    rendezvous_shard,
    routing_key,
    wait_for_pid_change,
)
from repro.shard.router import _ReshardState

REQUESTS = [
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {"kind": "fusion", "m": 96, "k": 64, "l": 80, "n": 72,
     "buffer_elems": 16384},
    {"kind": "sweep_point", "m": 32, "k": 32, "l": 32, "buffer_elems": 1024},
    "this line is not json",
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {"kind": "intra", "m": 40, "k": 24, "l": 56, "buffer_elems": 8192},
]


def direct_jsonl(payloads):
    engine = BatchEngine(EngineConfig(jobs=2))
    return engine.run_batch(
        [p if isinstance(p, str) else parse_request(p) for p in payloads]
    ).to_jsonl()


def ndjson_body(payloads):
    return "\n".join(
        p if isinstance(p, str) else json.dumps(p) for p in payloads
    ).encode("utf-8")


def make_app(tmp_path, shards, **overrides):
    config = ServerConfig(
        port=0, jobs=1, journal_path=str(tmp_path / "tier.journal")
    )
    app = ShardedApp(config, shards=shards, health_interval=0.2, **overrides)
    return app.start()


def post_batch(app, payloads):
    return app.handle(
        "POST",
        "/v1/analyze",
        {},
        {"content-type": "application/x-ndjson"},
        ndjson_body(payloads),
        "test-client",
    )


# ----------------------------------------------------------------------
# Byte-identity across shard counts
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_batch_matches_direct_run(self, tmp_path, shards):
        expected = direct_jsonl(REQUESTS)
        app = make_app(tmp_path, shards)
        try:
            response = post_batch(app, REQUESTS)
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip("\n") == expected
        finally:
            app.close()
        records = [json.loads(line) for line in expected.split("\n")]
        assert [r["index"] for r in records] == list(range(len(REQUESTS)))

    def test_single_mode_record(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            response = app.handle(
                "POST",
                "/v1/analyze",
                {},
                {"content-type": "application/json"},
                json.dumps(REQUESTS[0]).encode("utf-8"),
                "test-client",
            )
            assert response.status == 200
            record = json.loads(response.body.decode("utf-8"))
        finally:
            app.close()
        assert record == json.loads(direct_jsonl([REQUESTS[0]]))

    def test_routing_is_cache_affine(self, tmp_path):
        # The same request must land on the same shard, so the second
        # submission is answered entirely from shard-local caches.  (No
        # journal here: with one enabled, repeats are journal *replays*
        # rather than cache hits, which is covered elsewhere.)
        app = ShardedApp(
            ServerConfig(port=0, jobs=1), shards=3, health_interval=0.2
        ).start()
        try:
            first = post_batch(app, REQUESTS)
            second = post_batch(app, REQUESTS)
            assert first.body == second.body
            # 6 payloads: 4 unique cacheable + 1 duplicate + 1 parse
            # error; everything cacheable is a hit the second time.
            assert int(second.headers["X-Repro-Cached"]) >= 4
        finally:
            app.close()

    def test_bad_body_is_a_400_not_a_dispatch(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            response = app.handle(
                "POST", "/v1/analyze", {}, {}, b"", "test-client"
            )
            assert response.status == 400
        finally:
            app.close()


# ----------------------------------------------------------------------
# Kill-one-shard resilience
# ----------------------------------------------------------------------
class TestShardDeath:
    def test_sigkill_mid_batch_completes_byte_identical(self, tmp_path):
        payloads = [
            {"kind": "intra", "m": 48 + i, "k": 24, "l": 32,
             "buffer_elems": 8192}
            for i in range(10)
        ]
        expected = direct_jsonl(payloads)
        victim_index = rendezvous_shard(routing_key(payloads[0]), 3)
        with injected_faults("delay:intra:seconds=0.1", export_env=True):
            app = make_app(tmp_path, 3)
            try:
                outcome = {}

                def run():
                    outcome["response"] = post_batch(app, payloads)

                runner = threading.Thread(target=run)
                runner.start()
                time.sleep(0.4)
                victim = app.supervisor.handles[victim_index]
                old_pid = victim.pid
                os.kill(old_pid, signal.SIGKILL)
                runner.join(timeout=60.0)
                assert not runner.is_alive(), "batch hung after shard kill"
                response = outcome["response"]
                assert response.status == 200
                assert (
                    response.body.decode("utf-8").rstrip("\n") == expected
                )
                assert victim.pid != old_pid
                assert victim.generation >= 1
                assert app.supervisor.snapshot()["respawns"] >= 1
            finally:
                app.close()

    def test_idle_shard_death_is_healed_by_the_monitor(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            victim = app.supervisor.handles[1]
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)
            new_pid = wait_for_pid_change(
                app.supervisor, 1, old_pid, timeout=15.0
            )
            assert new_pid is not None and new_pid != old_pid
            # The healed tier still serves its full keyspace.
            response = post_batch(app, REQUESTS)
            assert response.status == 200
        finally:
            app.close()

    def test_successor_replays_the_dead_workers_journal(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            # Complete a batch so every touched shard journals results.
            assert post_batch(app, REQUESTS).status == 200
            target = app.supervisor.handles[
                rendezvous_shard(routing_key(REQUESTS[0]), 2)
            ]
            old_pid = target.pid
            os.kill(old_pid, signal.SIGKILL)
            assert wait_for_pid_change(
                app.supervisor, target.index, old_pid, timeout=15.0
            )
            assert target.started_replay >= 1
        finally:
            app.close()


# ----------------------------------------------------------------------
# Aggregation + readiness
# ----------------------------------------------------------------------
class TestAggregation:
    def test_stats_merge_counters_and_latency(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            assert post_batch(app, REQUESTS).status == 200
            stats = app.stats_dict()
        finally:
            app.close()
        assert stats["config"]["shards"] == 2
        assert stats["serving"]["requests_served"] == len(REQUESTS)
        # Both shards got a slice of the batch, so the merged reservoir
        # saw one analyze execution per shard.
        assert stats["latency"]["count"] >= 1
        assert stats["cache"]["misses"] >= 4
        assert stats["shards"]["count"] == 2
        assert stats["shards"]["ready"] == 2
        details = stats["shards"]["shards"]
        assert {d["label"] for d in details} == {"shard-0", "shard-1"}
        assert all("stats" in d for d in details)
        # Per-shard journals are private and live under the shard detail.
        assert all(
            d["stats"]["journal"]["path"].endswith(d["label"])
            for d in details
        )

    def test_metrics_exposition_has_shard_gauges(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            assert post_batch(app, REQUESTS).status == 200
            response = app.handle(
                "GET", "/metrics", {}, {}, b"", "test-client"
            )
        finally:
            app.close()
        text = response.body.decode("utf-8")
        assert 'repro_shard_up{shard="shard-0"} 1' in text
        assert 'repro_shard_up{shard="shard-1"} 1' in text
        assert "repro_shards_total 2" in text
        assert "repro_latency_seconds_count" in text

    def test_readyz_degrades_while_a_slot_respawns(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            ready = app.handle("GET", "/readyz", {}, {}, b"", "c")
            assert ready.status == 200
            assert json.loads(ready.body)["status"] == "ok"
            # Simulate a mid-respawn slot (the monitor races real kills).
            app.supervisor.handles[1].state = "respawning"
            degraded = app.handle("GET", "/readyz", {}, {}, b"", "c")
            assert degraded.status == 200
            payload = json.loads(degraded.body)
            assert payload["status"] == "degraded"
            assert payload["shards"]["ready"] == 1
            app.supervisor.handles[1].state = "ready"
        finally:
            app.close()

    def test_draining_rejects_new_analyze_calls(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            app.begin_drain()
            response = post_batch(app, REQUESTS[:1])
            assert response.status == 503
            assert "Retry-After" in response.headers
            ready = app.handle("GET", "/readyz", {}, {}, b"", "c")
            assert ready.status == 503
        finally:
            app.close()


# ----------------------------------------------------------------------
# Crash-loop containment, rerouting, and stall escalation
# ----------------------------------------------------------------------
class TestContainmentAndReroute:
    TIGHT_POLICY = RespawnPolicy(
        backoff_base=0.05,
        backoff_max=0.5,
        max_rapid_deaths=2,
        death_window=10.0,
        failed_retry_interval=1.0,
    )

    def _kill_until_contained(self, app, victim_index, budget=6):
        """SIGKILL the slot's worker until containment quarantines it."""
        handle = app.supervisor.handles[victim_index]
        for _ in range(budget):
            pid = handle.pid
            if handle.state == "failed":
                return True
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if handle.state == "failed" or (
                    handle.state == "ready" and handle.pid != pid
                ):
                    break
                time.sleep(0.02)
        return handle.state == "failed"

    def test_crash_loop_contained_keys_reroute_then_recover(self, tmp_path):
        expected = direct_jsonl(REQUESTS)
        app = make_app(
            tmp_path, 3, respawn_policy=self.TIGHT_POLICY, op_timeout=30.0
        )
        victim_index = rendezvous_shard(routing_key(REQUESTS[0]), 3)
        try:
            handle = app.supervisor.handles[victim_index]
            assert self._kill_until_contained(app, victim_index), (
                f"slot never quarantined: state={handle.state!r} after "
                f"{handle.respawns} respawns"
            )
            assert handle.contained == 1

            # readyz tells the truth about the quarantined slot.
            ready = app.handle("GET", "/readyz", {}, {}, b"", "c")
            payload = json.loads(ready.body)
            assert payload["status"] == "degraded"
            failed_slots = [
                slot
                for slot in payload["degraded_slots"]
                if slot["state"] == "failed"
            ]
            assert failed_slots and failed_slots[0]["shard"] == victim_index
            assert {"shard", "state", "generation", "respawns"} <= set(
                failed_slots[0]
            )

            # The failed slot's keys reroute to survivors: the batch
            # still completes byte-identical to a fault-free run.  (No
            # reroute counter bump here -- a quarantined slot is
            # excluded up front, before the first dispatch attempt.)
            response = post_batch(app, REQUESTS)
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip("\n") == expected

            # Recovery: the monitor re-admits the slot after the retry
            # interval, and it serves its keyspace again.
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if handle.state == "ready":
                    break
                time.sleep(0.05)
            assert handle.state == "ready", "failed slot never recovered"
            response = post_batch(app, REQUESTS)
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip("\n") == expected
        finally:
            app.close()

    def test_all_slots_failed_is_503_not_a_hang(self, tmp_path):
        app = make_app(tmp_path, 2, respawn_policy=self.TIGHT_POLICY)
        try:
            for handle in app.supervisor.handles:
                handle.state = "failed"
            response = post_batch(app, REQUESTS[:1])
            assert response.status == 503
            assert "Retry-After" in response.headers
            for handle in app.supervisor.handles:
                handle.state = "ready"
        finally:
            app.close()

    def test_stalled_shard_is_escalated_not_waited_out(self, tmp_path):
        expected = direct_jsonl(REQUESTS)
        app = make_app(tmp_path, 3, op_timeout=1.0)
        victim_index = rendezvous_shard(routing_key(REQUESTS[0]), 3)
        try:
            handle = app.supervisor.handles[victim_index]
            stalled_pid = handle.pid
            os.kill(stalled_pid, signal.SIGSTOP)
            try:
                # Dispatch must not hang on the silent worker: the recv
                # timeout escalates it (kill + respawn) and the retry
                # serves the slice from the successor, byte-identical.
                response = post_batch(app, REQUESTS)
            finally:
                try:
                    os.kill(stalled_pid, signal.SIGCONT)
                except OSError:
                    pass
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip("\n") == expected
            assert handle.timeouts >= 1
            assert handle.pid != stalled_pid
        finally:
            app.close()


# ----------------------------------------------------------------------
# End to end over real sockets
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_client_batch_over_http_matches_direct(self, tmp_path):
        config = ServerConfig(
            port=0, jobs=1, journal_path=str(tmp_path / "e2e.journal")
        )
        with ShardedServer(config, shards=3) as server:
            with ReproClient(port=server.port) as client:
                lines = client.batch_lines(REQUESTS)
                health = client.health()
        assert "\n".join(lines) == direct_jsonl(REQUESTS)
        assert health["shards"]["count"] == 3
        assert health["shards"]["ready"] == 3

    def test_shutdown_drains_and_stops_every_worker(self, tmp_path):
        config = ServerConfig(port=0, jobs=1)
        server = ShardedServer(config, shards=2).start()
        pids = [h.pid for h in server.app.supervisor.handles]
        assert server.shutdown(drain=True)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert not [pid for pid in pids if _pid_alive(pid)]


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


# ----------------------------------------------------------------------
# Live resharding: minimal movement, handoff accounting, fault overlap
# ----------------------------------------------------------------------
RESHARD_REQUESTS = [
    {"kind": "intra", "m": 24 + step, "k": 16, "l": 20, "buffer_elems": 4096}
    for step in range(12)
]


def journaled_keys(payloads):
    return sorted({routing_key(p) for p in payloads})


class TestResharding:
    @pytest.mark.parametrize("old,new", [(2, 3), (3, 2), (2, 4)])
    def test_keys_moved_is_exactly_the_ownership_delta(
        self, tmp_path, old, new
    ):
        # The property the minimal-movement claim rests on: the reshard
        # moves precisely the journaled keys whose rendezvous owner
        # differs between the two topologies -- no more, no fewer.
        app = make_app(tmp_path, old)
        try:
            assert post_batch(app, RESHARD_REQUESTS).status == 200
            predicted = ownership_delta(
                journaled_keys(RESHARD_REQUESTS), old, new
            )
            summary = app.reshard(new)
            assert summary["noop"] is False
            assert summary["keys_moved"] == len(predicted)
            assert (
                summary["imported"] + summary["duplicates"]
                == summary["exported"]
            )
            assert app.shards == new
            # Moved keys replay byte-identically from their new owners.
            response = post_batch(app, RESHARD_REQUESTS)
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip(
                "\n"
            ) == direct_jsonl(RESHARD_REQUESTS)
        finally:
            app.close()

    def test_reshard_to_same_count_is_a_noop(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            summary = app.reshard(2)
            assert summary["noop"] is True
            assert summary["keys_moved"] == 0
            assert app.shards == 2
        finally:
            app.close()

    def test_mid_batch_reshard_grow_and_shrink_byte_identical(
        self, tmp_path
    ):
        payloads = [
            {"kind": "intra", "m": 30 + step, "k": 20, "l": 24,
             "buffer_elems": 8192}
            for step in range(14)
        ]
        expected = direct_jsonl(payloads)
        summaries = []
        with injected_faults("delay:intra:seconds=0.08", export_env=True):
            app = make_app(tmp_path, 2)
            try:
                for target in (4, 2):
                    outcome = {}

                    def run():
                        outcome["response"] = post_batch(app, payloads)

                    runner = threading.Thread(target=run)
                    runner.start()
                    time.sleep(0.3)  # land the resize mid-batch
                    summaries.append(app.reshard(target))
                    runner.join(timeout=90.0)
                    assert not runner.is_alive(), "batch hung mid-reshard"
                    response = outcome["response"]
                    assert response.status == 200
                    assert (
                        response.body.decode("utf-8").rstrip("\n")
                        == expected
                    )
                    assert app.shards == target
            finally:
                app.close()
        for summary in summaries:
            assert (
                summary["imported"] + summary["duplicates"]
                == summary["exported"]
            )

    def test_sigkill_old_owner_mid_handoff_loses_nothing(self, tmp_path):
        app = make_app(tmp_path, 3)
        try:
            assert post_batch(app, RESHARD_REQUESTS).status == 200
            killed = {}

            def hook(phase, detail):
                # SIGKILL the first exporter right before its handoff
                # export is requested: the reshard must recover -- via
                # respawn-and-retry or the direct journal rescue.
                if phase == "export" and not killed:
                    victim = app.supervisor.handles[detail]
                    killed["index"] = detail
                    killed["pid"] = victim.pid
                    os.kill(victim.pid, signal.SIGKILL)

            summary = app.reshard(2, phase_hook=hook)
            assert killed, "phase hook never fired"
            assert (
                summary["imported"] + summary["duplicates"]
                == summary["exported"]
            )
            assert app.shards == 2
            response = post_batch(app, RESHARD_REQUESTS)
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip(
                "\n"
            ) == direct_jsonl(RESHARD_REQUESTS)
        finally:
            app.close()

    def test_disk_fault_on_import_successor_degrades_not_loses(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_GUARD_ENV, "1")
        app = make_app(tmp_path, 2)
        try:
            assert post_batch(app, RESHARD_REQUESTS).status == 200
            delta = ownership_delta(journaled_keys(RESHARD_REQUESTS), 2, 3)
            assert delta, "expected at least one key to move on 2->3"
            targets = {new_owner for _, new_owner in delta.values()}
            armed = []

            def hook(phase, detail):
                if phase == "import" and detail in targets and not armed:
                    app.supervisor.handles[detail].call(
                        "chaos",
                        timeout=10.0,
                        journal={"mode": "eio", "after": 0},
                    )
                    armed.append(detail)

            summary = app.reshard(3, phase_hook=hook)
            assert armed, "import hook never armed the journal fault"
            assert (
                summary["imported"] + summary["duplicates"]
                == summary["exported"]
            )
            assert armed[0] in summary["degraded_importers"]
            # Degraded durability, not lost answers: recompute is
            # deterministic, so the tier still answers byte-identically.
            response = post_batch(app, RESHARD_REQUESTS)
            assert response.status == 200
            assert response.body.decode("utf-8").rstrip(
                "\n"
            ) == direct_jsonl(RESHARD_REQUESTS)
        finally:
            app.close()

    def test_parked_overflow_is_503_with_retry_after(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            moving = next(
                p
                for p in RESHARD_REQUESTS
                if rendezvous_shard(routing_key(p), 2)
                != rendezvous_shard(routing_key(p), 3)
            )
            app._resharding = _ReshardState(2, 3, 0, 0.2)
            try:
                response = post_batch(app, [moving])
            finally:
                app._resharding = None
            assert response.status == 503
            assert "Retry-After" in response.headers
            counters = app.stats_dict()["serving"]
            assert counters["handoff_overflows"] >= 1
        finally:
            app.close()

    def test_parked_too_long_is_503_then_serves_after_commit(
        self, tmp_path
    ):
        app = make_app(tmp_path, 2)
        try:
            moving = next(
                p
                for p in RESHARD_REQUESTS
                if rendezvous_shard(routing_key(p), 2)
                != rendezvous_shard(routing_key(p), 3)
            )
            state = _ReshardState(2, 3, 8, 0.2)
            app._resharding = state
            try:
                timed_out = post_batch(app, [moving])
            finally:
                app._resharding = None
            assert timed_out.status == 503
            retry_after = timed_out.headers["Retry-After"]
            # The jitter is deterministic per client, so the same parked
            # client is told the same thing twice.
            app._resharding = _ReshardState(2, 3, 8, 0.2)
            try:
                again = post_batch(app, [moving])
            finally:
                app._resharding = None
            assert again.headers["Retry-After"] == retry_after
            assert app.stats_dict()["serving"]["handoff_wait_timeouts"] >= 2
            # Once the window closes the same key serves normally.
            served = post_batch(app, [moving])
            assert served.status == 200
        finally:
            app.close()

    def test_admin_reshard_endpoint_validates_and_resizes(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            assert post_batch(app, RESHARD_REQUESTS).status == 200
            for body in (b"not json", b'{"shards": 0}', b'{"shards": true}',
                         b'{"shards": "three"}', b"{}"):
                response = app.handle(
                    "POST", "/admin/reshard", {}, {}, body, "c"
                )
                assert response.status == 400, body
            ok = app.handle(
                "POST", "/admin/reshard", {}, {}, b'{"shards": 3}', "c"
            )
            assert ok.status == 200
            summary = json.loads(ok.body)
            assert (summary["from"], summary["to"]) == (2, 3)
            assert app.shards == 3
            noop = app.handle(
                "POST", "/admin/reshard", {}, {}, b'{"shards": 3}', "c"
            )
            assert json.loads(noop.body)["noop"] is True
            stats = app.stats_dict()
            assert stats["resharding"]["reshards_completed"] == 1
            assert stats["resharding"]["keys_moved"] == summary["keys_moved"]
            assert stats["resharding"]["last"]["to"] == 3
        finally:
            app.close()

    def test_readyz_reports_resharding_as_its_own_state(self, tmp_path):
        app = make_app(tmp_path, 2)
        try:
            app._resharding = _ReshardState(2, 3, 8, 5.0)
            try:
                ready = app.handle("GET", "/readyz", {}, {}, b"", "c")
            finally:
                app._resharding = None
            assert ready.status == 200
            payload = json.loads(ready.body)
            assert payload["status"] == "resharding"
            assert payload["resharding"]["active"] is True
            assert payload["resharding"]["pending"] == 0
            assert (payload["resharding"]["from"],
                    payload["resharding"]["to"]) == (2, 3)
        finally:
            app.close()


# ----------------------------------------------------------------------
# Hot-key replication
# ----------------------------------------------------------------------
class TestHotKeyReplication:
    def test_tracker_decays_and_bounds_memory(self):
        now = [0.0]
        tracker = HotKeyTracker(
            threshold=3.0, halflife=1.0, max_keys=4, clock=lambda: now[0]
        )
        for _ in range(4):
            tracker.observe("k")
        assert tracker.is_hot("k")
        now[0] += 10.0  # ten half-lives: rate decays to ~0.004x
        assert not tracker.is_hot("k")
        for index in range(10):
            tracker.observe(f"key-{index}")
        assert tracker.snapshot()["tracked"] <= 4

    def test_hot_key_reads_fan_out_and_stay_byte_identical(self, tmp_path):
        app = make_app(tmp_path, 3, hot_key_threshold=3.0)
        try:
            payload = REQUESTS[0]
            key = routing_key(payload)
            bodies = set()
            for _ in range(12):
                response = app.handle(
                    "POST",
                    "/v1/analyze",
                    {},
                    {"content-type": "application/json"},
                    json.dumps(payload).encode("utf-8"),
                    "c",
                )
                assert response.status == 200
                bodies.add(response.body)
            # Read-any discipline: whichever replica answered, the bytes
            # are the owner's bytes.
            assert len(bodies) == 1
            assert app.hot_keys.is_hot(key)
            stats = app.stats_dict()
            assert stats["hot_keys"]["hot"] >= 1
            assert stats["hot_keys"]["replica_reads"] >= 1
        finally:
            app.close()

    def test_cold_keys_keep_single_owner_routing(self, tmp_path):
        app = make_app(tmp_path, 3, hot_key_threshold=1000.0)
        try:
            for _ in range(3):
                assert post_batch(app, RESHARD_REQUESTS).status == 200
            stats = app.stats_dict()
            assert stats["hot_keys"]["hot"] == 0
            assert stats["hot_keys"]["replica_reads"] == 0
        finally:
            app.close()
