"""Tests for the generalized principle optimizer (arbitrary loop nests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    InfeasibleError,
    generic_candidates,
    optimize_generic,
    optimize_intra,
)
from repro.dataflow import memory_access
from repro.ir import Tensor, TensorOperator, matmul, rowwise_softmax


def batched_mm(b=4, m=16, k=12, l=20):
    """A true 4-dim batched matmul with the weight shared across batch."""
    a = Tensor("a", (b, m, k))
    w = Tensor("w", (k, l))
    c = Tensor("c", (b, m, l))
    return TensorOperator(
        name="bmm",
        dims={"B": b, "M": m, "K": k, "L": l},
        inputs=(a, w),
        output=c,
        indexing={"a": ("B", "M", "K"), "w": ("K", "L"), "c": ("B", "M", "L")},
        reduction_dims=frozenset({"K"}),
    )


def contraction_3in():
    """A 5-dim einsum-like contraction: D[i,l] = sum_jk A[i,j] B[j,k] C[k,l]
    modeled as one fused loop nest with two reductions (stress shape)."""
    a = Tensor("a", (16, 12))
    b = Tensor("b", (12, 10))
    c = Tensor("c", (10, 14))
    d = Tensor("d", (16, 14))
    return TensorOperator(
        name="chain3",
        dims={"I": 16, "J": 12, "Kd": 10, "L": 14},
        inputs=(a, b, c),
        output=d,
        indexing={
            "a": ("I", "J"),
            "b": ("J", "Kd"),
            "c": ("Kd", "L"),
            "d": ("I", "L"),
        },
        reduction_dims=frozenset({"J", "Kd"}),
    )


class TestGenericCandidates:
    def test_candidates_fit_buffer(self):
        op = batched_mm()
        for budget in (10, 100, 1000, 10000):
            for candidate in generic_candidates(op, budget):
                assert candidate.dataflow.buffer_footprint(op) <= budget, (
                    candidate.label,
                    budget,
                )

    def test_candidate_count_bounded(self):
        """Constant-size candidate set (one-shot property): per tensor a
        dozen-ish refined stationary tilings + resident, per dim pair an
        untile candidate, per dim a stream candidate."""
        op = batched_mm()
        assert len(generic_candidates(op, 10**6)) <= 80

    def test_stationary_candidate_is_non_redundant(self):
        op = batched_mm()
        for candidate in generic_candidates(op, 500):
            if candidate.label == "stationary[w]":
                report = memory_access(op, candidate.dataflow)
                assert report.per_tensor["w"].multiplier == 1

    def test_resident_candidate_reaches_ideal_for_all(self):
        op = batched_mm()
        candidates = {
            c.label: c for c in generic_candidates(op, 10**7)
        }
        report = memory_access(op, candidates["resident[a]"].dataflow)
        assert report.total == op.ideal_memory_access()


class TestOptimizeGeneric:
    def test_batched_mm_converges_to_ideal(self):
        op = batched_mm()
        assert (
            optimize_generic(op, 10**7).memory_access == op.ideal_memory_access()
        )

    def test_monotone_in_buffer(self):
        op = batched_mm()
        previous = None
        for budget in (16, 64, 256, 1024, 4096, 16384):
            total = optimize_generic(op, budget).memory_access
            if previous is not None:
                assert total <= previous
            previous = total

    def test_batched_matches_folded_at_large_buffers(self):
        """Folding B into M is exact for batch-shared weights; both models
        agree once the buffer is unconstrained."""
        b, m, k, l = 4, 16, 12, 20
        native = optimize_generic(batched_mm(b, m, k, l), 10**7).memory_access
        folded = optimize_intra(matmul("fold", b * m, k, l), 10**7).memory_access
        assert native == folded

    def test_batched_never_worse_than_folded(self):
        """The native 4-dim space contains the folded dataflows."""
        b, m, k, l = 4, 32, 24, 40
        for budget in (100, 400, 1600, 6400):
            native = optimize_generic(batched_mm(b, m, k, l), budget).memory_access
            folded = optimize_intra(
                matmul("fold", b * m, k, l), budget
            ).memory_access
            assert native <= folded * 1.01  # allow integer-rounding jitter

    def test_three_input_contraction(self):
        op = contraction_3in()
        result = optimize_generic(op, 10**6)
        assert result.memory_access == op.ideal_memory_access()
        tighter = optimize_generic(op, 150)
        assert tighter.memory_access >= result.memory_access

    def test_mm_dispatches_to_exact_path(self):
        op = matmul("mm", 96, 64, 80)
        assert (
            optimize_generic(op, 2000).memory_access
            == optimize_intra(op, 2000).memory_access
        )

    def test_streaming_dispatch(self):
        op = rowwise_softmax("sm", Tensor("x", (16, 16)))
        assert optimize_generic(op, 64).label == "streaming"

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            optimize_generic(batched_mm(), 1)

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            optimize_generic(batched_mm(), 0)

    @given(
        st.integers(2, 6),
        st.integers(2, 24),
        st.integers(2, 24),
        st.integers(2, 24),
        st.integers(16, 4096),
    )
    @settings(max_examples=40, deadline=None)
    def test_result_at_least_ideal(self, b, m, k, l, budget):
        op = batched_mm(b, m, k, l)
        try:
            result = optimize_generic(op, budget)
        except InfeasibleError:
            return
        assert result.memory_access >= op.ideal_memory_access()
        assert result.dataflow.buffer_footprint(op) <= budget
