"""Tests for the FuseCU functional model (tile & column fusion mappings)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import FuseCUArray, FuseCUConfig
from repro.dataflow import ArrayShape


def chain_shapes(max_dim=12):
    dims = st.integers(min_value=1, max_value=max_dim)
    return st.tuples(dims, dims, dims, dims, st.integers(0, 2 ** 31 - 1))


class TestFuseCUConfig:
    def test_total_pes(self):
        assert FuseCUConfig(n=128, cus=4).total_pes == 128 * 128 * 4

    def test_max_untiled_is_2n(self):
        """Sec. IV-B: the widest untiled dimension worth supporting is 2N."""
        assert FuseCUConfig(n=128).max_untiled == 256

    def test_array_shapes(self):
        shapes = FuseCUConfig(n=128, cus=4).array_shapes()
        assert ArrayShape(128, 128) in shapes
        assert ArrayShape(256, 128) in shapes
        assert ArrayShape(128, 256) in shapes
        assert ArrayShape(256, 256) in shapes

    def test_single_cu_shapes(self):
        assert FuseCUConfig(n=64, cus=1).array_shapes() == (ArrayShape(64, 64),)

    def test_invalid_cus(self):
        with pytest.raises(ValueError):
            FuseCUConfig(n=64, cus=3)


class TestTileFusion:
    @given(chain_shapes())
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_chain(self, spec):
        m, k, l, n, seed = spec
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        d = rng.normal(size=(l, n))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        run = fusecu.tile_fusion(a, b, d)
        assert np.allclose(run.result, (a @ b) @ d)

    def test_intermediate_never_leaves_array(self):
        rng = np.random.default_rng(1)
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        run = fusecu.tile_fusion(
            rng.normal(size=(8, 6)), rng.normal(size=(6, 10)), rng.normal(size=(10, 5))
        )
        assert run.intermediate_traffic == 0
        assert run.fused_on_chip
        assert run.stats.stationary_loads == 0  # C promoted in place

    def test_oversized_intermediate_rejected(self):
        fusecu = FuseCUArray(FuseCUConfig(n=4))
        with pytest.raises(ValueError, match="exceeds"):
            fusecu.tile_fusion(
                np.ones((8, 3)), np.ones((3, 4)), np.ones((4, 2))
            )

    def test_shape_mismatch_rejected(self):
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        with pytest.raises(ValueError, match="mismatch"):
            fusecu.tile_fusion(np.ones((4, 3)), np.ones((5, 4)), np.ones((4, 2)))


class TestColumnFusion:
    @given(chain_shapes())
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_chain(self, spec):
        m, k, l, n, seed = spec
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        d = rng.normal(size=(l, n))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        run = fusecu.column_fusion(a, b, d)
        assert np.allclose(run.result, (a @ b) @ d)

    def test_intermediate_on_wire(self):
        rng = np.random.default_rng(2)
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        run = fusecu.column_fusion(
            rng.normal(size=(8, 6)), rng.normal(size=(6, 10)), rng.normal(size=(10, 5))
        )
        assert run.intermediate_traffic == 0

    def test_pipelining_beats_unfused_cycles(self):
        """Fused executions avoid the intermediate round trip and overlap
        the two operators, so they take fewer cycles than two passes."""
        rng = np.random.default_rng(3)
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        a = rng.normal(size=(12, 10))
        b = rng.normal(size=(10, 14))
        d = rng.normal(size=(14, 9))
        fused = fusecu.column_fusion(a, b, d)
        unfused = fusecu.unfused_reference(a, b, d)
        assert fused.stats.cycles < unfused.stats.cycles


class TestUnfusedReference:
    def test_matches_numpy_and_counts_traffic(self):
        rng = np.random.default_rng(4)
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        a = rng.normal(size=(20, 6))
        b = rng.normal(size=(6, 18))
        d = rng.normal(size=(18, 7))
        run = fusecu.unfused_reference(a, b, d)
        assert np.allclose(run.result, (a @ b) @ d)
        assert run.intermediate_traffic == 2 * 20 * 18
        assert not run.fused_on_chip


class TestPipelinedColumnFusion:
    """Cycle-locked co-simulation of the two halves (Fig. 7(e) wiring)."""

    @given(chain_shapes())
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_chain(self, spec):
        m, k, l, n, seed = spec
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        d = rng.normal(size=(l, n))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        run = fusecu.column_fusion_pipelined(a, b, d)
        assert np.allclose(run.result, (a @ b) @ d)
        assert run.fused_on_chip

    def test_pipeline_latency_formula(self):
        """Total latency = consumer lag (k) + OS wavefront (l+m+n-2) + drain."""
        rng = np.random.default_rng(0)
        m, k, l, n = 8, 6, 10, 7
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, l))
        d = rng.normal(size=(l, n))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        run = fusecu.column_fusion_pipelined(a, b, d)
        assert run.stats.cycles == k + (l + m + n - 2) + n

    def test_pipelining_beats_sequential_passes(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(12, 10))
        b = rng.normal(size=(10, 14))
        d = rng.normal(size=(14, 9))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        pipelined = fusecu.column_fusion_pipelined(a, b, d)
        sequential = fusecu.unfused_reference(a, b, d)
        assert pipelined.stats.cycles < sequential.stats.cycles

    def test_agrees_with_functional_shortcut(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(9, 7))
        b = rng.normal(size=(7, 11))
        d = rng.normal(size=(11, 8))
        fusecu = FuseCUArray(FuseCUConfig(n=16))
        pipelined = fusecu.column_fusion_pipelined(a, b, d)
        functional = fusecu.column_fusion(a, b, d)
        assert np.allclose(pipelined.result, functional.result)

    def test_oversized_rejected(self):
        fusecu = FuseCUArray(FuseCUConfig(n=4))
        with pytest.raises(ValueError, match="exceed"):
            fusecu.column_fusion_pipelined(
                np.ones((8, 3)), np.ones((3, 4)), np.ones((4, 2))
            )
