"""Unit + property tests for repro.plan (partitioner, enumerative, scenarios).

Includes the issue's two headline properties:

* chain DP (``optimize_chain``) is *exactly* optimal against brute-force
  enumeration of every cut placement for chains of length <= 5;
* a DAG plan's total MA is never worse than the chain-independent plan
  on the same graph.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph_optimizer import optimize_chain, optimize_graph, segment_cost
from repro.ir import OperatorGraph, matmul, rowwise_softmax
from repro.plan import (
    SCENARIO_BUFFERS,
    SCENARIOS,
    DagPlan,
    clean_links,
    cost_partition,
    enumerate_plans,
    list_scenarios,
    plan_dag,
    retention_candidates,
    scenario_graph,
)
from repro.plan.enumerative import _compositions


# ----------------------------------------------------------------------
# Graph builders shared across tests
# ----------------------------------------------------------------------
def join_graph(dim=64):
    """a, b -> join: two producers feed one consumer."""
    graph = OperatorGraph("joined")
    a = graph.add(matmul("a", dim, dim, dim))
    b = graph.add(matmul("b", dim, dim, dim))
    j = graph.add(matmul("join", dim, dim, dim, a=a.output, b=b.output))
    return graph, (a, b, j)


def fanout_graph(dim=32):
    """x -> {c1, c2}: one output with two consumers."""
    graph = OperatorGraph("fanout")
    x = graph.add(matmul("x", dim, dim, dim))
    c1 = graph.add(matmul("c1", dim, dim, dim, a=x.output))
    c2 = graph.add(matmul("c2", dim, dim, dim, a=x.output))
    return graph, (x, c1, c2)


def diamond_graph(m=16, l=16, q=16):
    """x -> {c1, c2} -> j: fan-out then join."""
    graph = OperatorGraph("diamond")
    x = graph.add(matmul("x", m, l, l))
    c1 = graph.add(matmul("c1", m, l, m, a=x.output))
    c2 = graph.add(matmul("c2", m, l, q, a=x.output))
    j = graph.add(matmul("j", m, m, q, a=c1.output, b=c2.output))
    return graph, (x, c1, c2, j)


def build_chain(dims):
    """mm -> sm -> mm -> ... alternating so 3-op windows stay fusable."""
    ops = []
    prev = None
    for index, (m, k, l) in enumerate(dims):
        if prev is None:
            op = matmul(f"mm{index}", m, k, l)
        elif index % 2 == 1:
            op = rowwise_softmax(f"sm{index}", prev.output)
        else:
            pm, pl = prev.output.shape
            op = matmul(f"mm{index}", pm, pl, l, a=prev.output)
        ops.append(op)
        prev = op
    return tuple(ops)


# ----------------------------------------------------------------------
# clean_links / partitions
# ----------------------------------------------------------------------
class TestCleanLinks:
    def test_join_keeps_all_in_links(self):
        graph, _ = join_graph()
        assert clean_links(graph) == {"a": "join", "b": "join"}

    def test_fanout_has_no_links(self):
        graph, _ = fanout_graph()
        assert clean_links(graph) == {}

    def test_count_mismatch_is_not_clean(self):
        graph = OperatorGraph("counts")
        a = graph.add(matmul("a", 8, 8, 8, count=2))
        graph.add(matmul("b", 8, 8, 8, a=a.output, count=3))
        assert clean_links(graph) == {}

    def test_chain_links_match_chains(self):
        ops = build_chain([(8, 8, 8)] * 3)
        graph = OperatorGraph("chain")
        graph.extend(ops)
        assert clean_links(graph) == {ops[0].name: ops[1].name,
                                      ops[1].name: ops[2].name}


class TestCostPartition:
    def test_rejects_incomplete_cover(self):
        graph, (x, c1, _) = fanout_graph()
        assert cost_partition(graph, [(x,), (c1,)], (), 4096) is None

    def test_rejects_duplicate_ops(self):
        graph, (x, c1, c2) = fanout_graph()
        assert (
            cost_partition(graph, [(x,), (c1,), (c2,), (x,)], (), 4096) is None
        )

    def test_rejects_non_clean_segment(self):
        # x's output has two consumers, so (x, c1) is not a legal fused set.
        graph, (x, c1, c2) = fanout_graph()
        assert cost_partition(graph, [(x, c1), (c2,)], (), 4096) is None

    def test_rejects_retention_of_external_tensor(self):
        graph, (x, c1, c2) = fanout_graph()
        segments = [(x,), (c1,), (c2,)]
        assert cost_partition(graph, segments, ("x.A",), 4096) is None

    def test_rejects_retention_without_later_consumer(self):
        graph, (x, c1, c2) = fanout_graph()
        segments = [(x,), (c1,), (c2,)]
        # c1's output has no consumers at all.
        assert cost_partition(graph, segments, ("c1.C",), 4096) is None

    def test_costs_equal_chain_plan_without_retention(self):
        graph, ops = fanout_graph()
        segments = [(op,) for op in ops]
        plan = cost_partition(graph, segments, (), 4096)
        assert plan is not None
        assert plan.memory_access == optimize_graph(graph, 4096).memory_access

    def test_retention_elides_consumer_traffic(self):
        graph, ops = fanout_graph()
        segments = [(op,) for op in ops]
        base = cost_partition(graph, segments, (), 4096)
        retained = cost_partition(graph, segments, ("x.C",), 4096)
        assert retained is not None and base is not None
        assert retained.memory_access < base.memory_access
        assert retained.retained == ("x.C",)
        assert all(seg.reserved_elems == ops[0].output.size
                   for seg in retained.segments)

    def test_retention_shrinks_budget(self):
        graph, ops = fanout_graph()
        segments = [(op,) for op in ops]
        # Reserve so much that segments cannot fit: buffer == tensor size.
        assert (
            cost_partition(graph, segments, ("x.C",), ops[0].output.size)
            is None
        )


class TestRetentionCandidates:
    def test_fanout_tensor_is_candidate(self):
        graph, ops = fanout_graph()
        assert retention_candidates(graph, [(op,) for op in ops]) == ("x.C",)

    def test_mid_segment_output_is_not_candidate(self):
        graph, (x, c1, c2, j) = diamond_graph()
        # x fused with c1: x is no longer a segment's last op.
        segments = [(x, c1), (c2,), (j,)]
        assert "x.C" not in retention_candidates(graph, segments)

    def test_same_segment_consumer_is_not_candidate(self):
        ops = build_chain([(8, 8, 8)] * 2)
        graph = OperatorGraph("chain")
        graph.extend(ops)
        assert retention_candidates(graph, [ops]) == ()


# ----------------------------------------------------------------------
# plan_dag
# ----------------------------------------------------------------------
class TestPlanDag:
    def test_join_choice_beats_chain_plan(self):
        graph, _ = join_graph()
        plan = plan_dag(graph, 8192)
        chain = optimize_graph(graph, 8192)
        assert plan.memory_access < chain.memory_access
        fused = [tuple(op.name for op in s.ops) for s in plan.segments if s.fused]
        assert fused  # the join actually got merged with one producer

    def test_retention_beats_chain_plan(self):
        graph, _ = fanout_graph()
        plan = plan_dag(graph, 4096)
        assert plan.retained == ("x.C",)
        assert plan.memory_access < optimize_graph(graph, 4096).memory_access

    def test_retention_disabled(self):
        graph, _ = fanout_graph()
        plan = plan_dag(graph, 4096, enable_retention=False)
        assert plan.retained == ()

    def test_plan_is_deterministic(self):
        graph, _ = diamond_graph()
        first = plan_dag(graph, 4096)
        second = plan_dag(graph, 4096)
        assert first.signature() == second.signature()
        assert first.memory_access == second.memory_access

    def test_infeasible_buffer_raises(self):
        graph, _ = fanout_graph()
        with pytest.raises(ValueError):
            plan_dag(graph, 1)

    def test_plan_covers_graph(self):
        graph, _ = diamond_graph()
        plan = plan_dag(graph, 8192)
        names = sorted(op.name for s in plan.segments for op in s.ops)
        assert names == sorted(op.name for op in graph)


# ----------------------------------------------------------------------
# Enumerative baseline
# ----------------------------------------------------------------------
class TestEnumerative:
    def test_exhausts_small_graph(self):
        graph, _ = join_graph()
        outcome = enumerate_plans(graph, 8192)
        assert outcome.stats.exhausted
        assert outcome.plan is not None

    def test_budget_truncates(self):
        graph, _ = join_graph()
        outcome = enumerate_plans(graph, 8192, budget=1)
        assert not outcome.stats.exhausted
        assert outcome.stats.plans_evaluated == 1

    def test_budget_must_be_positive(self):
        graph, _ = join_graph()
        with pytest.raises(ValueError, match="budget"):
            enumerate_plans(graph, 8192, budget=0)

    def test_deterministic(self):
        graph, _ = diamond_graph()
        first = enumerate_plans(graph, 8192)
        second = enumerate_plans(graph, 8192)
        assert first.plan.signature() == second.plan.signature()
        assert first.stats == second.stats

    def test_exhausted_baseline_not_beaten_by_principle(self):
        for builder in (join_graph, fanout_graph, diamond_graph):
            graph, _ = builder()
            for buffer_elems in (4096, 32768):
                outcome = enumerate_plans(graph, buffer_elems)
                assert outcome.stats.exhausted
                plan = plan_dag(graph, buffer_elems)
                # An exhausted enumeration covers the principle planner's
                # space, so equality is the best the principle can do.
                assert plan.memory_access >= outcome.plan.memory_access
                assert plan.memory_access <= outcome.plan.memory_access

    def test_compositions_cover_and_cap(self):
        parts = list(_compositions(4, 2))
        assert all(sum(p) == 4 for p in parts)
        assert all(max(p) <= 2 for p in parts)
        assert len(parts) == len(set(parts)) == 5  # fibonacci(5)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
class TestScenarios:
    def test_catalog(self):
        assert list_scenarios() == (
            "attention", "decode", "moe", "training-backward",
        )
        for name in list_scenarios():
            assert SCENARIOS[name].description

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown plan scenario"):
            scenario_graph("nope")

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            scenario_graph("attention", "nope")

    def test_model_rescales(self):
        small = scenario_graph("attention")
        big = scenario_graph("attention", "bert")
        assert small.macs < big.macs

    def test_acceptance_matrix(self):
        """All four scenarios x both pinned buffers: principle <= baseline."""
        for name in list_scenarios():
            graph = scenario_graph(name)
            for buffer_elems in SCENARIO_BUFFERS:
                plan = plan_dag(graph, buffer_elems)
                outcome = enumerate_plans(graph, buffer_elems)
                assert outcome.plan is not None, (name, buffer_elems)
                assert plan.memory_access <= outcome.plan.memory_access, (
                    name, buffer_elems,
                )
                chain = optimize_graph(graph, buffer_elems)
                assert plan.memory_access <= chain.memory_access


# ----------------------------------------------------------------------
# Properties (the issue's satellite 3)
# ----------------------------------------------------------------------
def brute_force_chain_total(ops, buffer_elems):
    """Minimum chain cost over ALL cut placements, or None if infeasible."""
    best = None
    for parts in _compositions(len(ops), len(ops)):
        total = 0
        start = 0
        for part in parts:
            result = segment_cost(ops[start:start + part], buffer_elems)
            if result is None:
                break
            total += result.memory_access
            start += part
        else:
            if best is None or total < best:
                best = total
    return best


class TestChainDPOptimality:
    @given(
        st.lists(
            st.tuples(
                st.integers(2, 12), st.integers(2, 12), st.integers(2, 12)
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(16, 4096),
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_brute_force(self, dims, buffer_elems):
        """optimize_chain is exactly optimal over every cut placement."""
        ops = build_chain(dims)
        expected = brute_force_chain_total(ops, buffer_elems)
        if expected is None:
            with pytest.raises(ValueError, match="no feasible plan"):
                optimize_chain(ops, buffer_elems, max_group=len(ops))
            return
        segments = optimize_chain(ops, buffer_elems, max_group=len(ops))
        total = sum(segment.memory_access for segment in segments)
        assert total == expected

    @given(
        st.lists(
            st.tuples(
                st.integers(2, 10), st.integers(2, 10), st.integers(2, 10)
            ),
            min_size=2,
            max_size=4,
        ),
        st.integers(64, 4096),
    )
    @settings(max_examples=30, deadline=None)
    def test_dp_no_worse_than_unfused(self, dims, buffer_elems):
        ops = build_chain(dims)
        solo = 0
        for op in ops:
            result = segment_cost((op,), buffer_elems)
            if result is None:
                return  # some op does not fit at all
            solo += result.memory_access
        segments = optimize_chain(ops, buffer_elems, max_group=len(ops))
        assert sum(s.memory_access for s in segments) <= solo


class TestDagPlanProperty:
    @given(
        st.sampled_from([join_graph, fanout_graph, diamond_graph]),
        st.integers(4, 48),
        st.integers(256, 1 << 15),
    )
    @settings(max_examples=40, deadline=None)
    def test_dag_plan_never_worse_than_chain_plan(
        self, builder, dim, buffer_elems
    ):
        """The issue's second property, on branch/join/diamond graphs."""
        graph, _ = builder(dim)
        try:
            chain_total = optimize_graph(graph, buffer_elems).memory_access
        except ValueError:
            return  # chain-infeasible: nothing to compare against
        plan = plan_dag(graph, buffer_elems)
        assert plan.memory_access <= chain_total

    @given(st.integers(256, 1 << 15))
    @settings(max_examples=20, deadline=None)
    def test_dag_plan_on_scenarios(self, buffer_elems):
        for name in ("attention", "training-backward"):
            graph = scenario_graph(name)
            try:
                chain_total = optimize_graph(graph, buffer_elems).memory_access
            except ValueError:
                continue
            plan = plan_dag(graph, buffer_elems)
            assert plan.memory_access <= chain_total
            assert plan.memory_access >= graph.ideal_memory_access()

    def test_plan_total_is_sum_of_segments(self):
        graph, _ = fanout_graph()
        plan = plan_dag(graph, 4096)
        assert isinstance(plan, DagPlan)
        assert plan.memory_access == sum(
            s.memory_access for s in plan.segments
        )
        for segment in plan.segments:
            assert segment.memory_access == (
                segment.raw_memory_access - segment.elided_access
            )
            assert segment.memory_access >= 0
