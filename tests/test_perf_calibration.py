"""Calibration: the analytical cycle model vs the functional simulator.

The performance model (`repro.arch.perf`) estimates compute cycles as
``MACs / (PEs x spatial utilization)`` plus a one-time fill; the functional
simulator executes the actual wavefronts.  For single array passes the two
must agree to first order -- this anchors the Fig. 10 utilization numbers
to the register-accurate substrate.
"""

import numpy as np
import pytest

from repro.arch import (
    PAPER_DEFAULT_MEMORY,
    SystolicArray,
    matmul_segment_perf,
)
from repro.dataflow import ArrayShape


class TestSinglePassCalibration:
    @pytest.mark.parametrize(
        "m,k,l,rows,cols",
        [
            (16, 64, 16, 16, 16),   # full array, long stream
            (8, 64, 16, 16, 16),    # half the rows idle
            (16, 256, 16, 16, 16),  # longer stream amortizes fill further
        ],
    )
    def test_os_pass_cycles_match_model(self, m, k, l, rows, cols):
        array = SystolicArray(rows, cols)
        a = np.ones((m, k))
        b = np.ones((k, l))
        _result, stats = array.run_os(a, b)
        segment = matmul_segment_perf(
            name="cal",
            macs=m * k * l,
            ma_elems=1,  # negligible memory side; compute-bound by design
            stationary_dims=(m, l),
            stream_len=k,
            shapes=(ArrayShape(rows, cols),),
            total_pes=rows * cols,
            memory=PAPER_DEFAULT_MEMORY,
        )
        # Functional: k + m + l - 2 compute beats + l drain.
        # Analytical: macs/(pes*util) + rows + cols = k*frac + fill.
        ratio = stats.cycles / segment.compute_cycles
        assert 0.5 < ratio < 2.0, (stats.cycles, segment.compute_cycles)

    def test_utilization_effect_visible_in_both(self):
        """Halving the spatial tile doubles the analytical compute cycles
        per MAC; the functional sim shows the same work in similar cycles
        with half the PEs doing useful work."""
        array = SystolicArray(16, 16)
        k = 128
        full, _ = (None, None)
        _r_full, stats_full = array.run_os(np.ones((16, k)), np.ones((k, 16)))
        _r_half, stats_half = array.run_os(np.ones((8, k)), np.ones((k, 16)))
        # Same latency class (stream dominates)...
        assert abs(stats_full.cycles - stats_half.cycles) <= 16 + 8
        # ...but half the MACs: per-MAC cycles double, as the model says.
        per_mac_full = stats_full.cycles / (16 * k * 16)
        per_mac_half = stats_half.cycles / (8 * k * 16)
        assert per_mac_half / per_mac_full == pytest.approx(2.0, rel=0.15)

    def test_long_stream_approaches_model_asymptote(self):
        """As the streaming dim grows, functional cycles/MAC approach the
        analytical 1/(PEs x utilization) exactly."""
        rows = cols = 16
        array = SystolicArray(rows, cols)
        errors = []
        for k in (64, 256, 1024):
            _r, stats = array.run_os(np.ones((rows, k)), np.ones((k, cols)))
            functional = stats.cycles / (rows * k * cols)
            analytical = 1.0 / (rows * cols)
            errors.append(abs(functional - analytical) / analytical)
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.05
