"""End-to-end integration tests tying the subsystems together."""

import numpy as np
import pytest

from repro.arch import (
    ALL_PLATFORMS,
    FuseCUArray,
    FuseCUConfig,
    MemorySpec,
    evaluate_graph,
    fusecu,
    tpuv4i,
    unfcu,
)
from repro.core import (
    decide_fusion,
    graph_lower_bound,
    intra_lower_bound,
    optimize_graph,
    optimize_intra,
)
from repro.ir import OperatorGraph, matmul, rowwise_softmax
from repro.search import exhaustive_search, genetic_search, GASettings
from repro.workloads import BERT, build_layer_graph


class TestPaperWorkedExample:
    """The full Sec. III-A4 example, end to end."""

    def test_bert_512kb(self):
        op = matmul("bert", 1024, 768, 768)
        result = optimize_intra(op, 512 * 1024)
        # Two-NRA, K untiled, B accessed exactly 2KL, A and C once each.
        assert result.report.per_tensor["bert.B"].accesses == 2 * 768 * 768
        assert result.report.per_tensor["bert.A"].accesses == 1024 * 768
        assert result.report.per_tensor["bert.C"].accesses == 1024 * 768
        # "matches the best dataflow searched using DSE" (paper): search
        # cannot do better.
        searched = exhaustive_search(op, 512 * 1024)
        assert result.memory_access <= searched.memory_access


class TestOneShotVsSearchTiming:
    def test_principles_are_orders_of_magnitude_cheaper(self):
        """The paper's motivation: search costs thousands of evaluations,
        principles a constant handful."""
        op = matmul("mm", 256, 192, 320)
        ga = genetic_search(
            op, 50000, GASettings(population=32, generations=20)
        )
        assert ga.evaluations > 500
        # The principle engine evaluates at most a few dozen candidates
        # (12 configurations x integer refinements).


class TestAttentionEndToEnd:
    def test_fused_plan_beats_unfused_and_respects_bound(self):
        graph = build_layer_graph(BERT)
        buffer_elems = 512 * 1024
        fused = optimize_graph(graph, buffer_elems)
        unfused = optimize_graph(graph, buffer_elems, enable_fusion=False)
        assert fused.memory_access < unfused.memory_access
        assert fused.memory_access >= graph.ideal_memory_access()
        assert fused.memory_access == graph_lower_bound(graph, buffer_elems)

    def test_fused_groups_are_attention_and_ffn(self):
        graph = build_layer_graph(BERT)
        plan = optimize_graph(graph, 512 * 1024)
        fused_names = {
            tuple(op.name for op in segment.ops)
            for segment in plan.fused_segments
        }
        assert ("Bert.qk", "Bert.softmax", "Bert.av") in fused_names
        assert ("Bert.ffn1", "Bert.ffn2") in fused_names


class TestPlatformComparison:
    @pytest.fixture(scope="class")
    def perfs(self):
        graph = build_layer_graph(BERT)
        return {
            factory().name: evaluate_graph(graph, factory())
            for factory in ALL_PLATFORMS
        }

    def test_fusecu_lowest_ma(self, perfs):
        fusecu_ma = perfs["FuseCU"].total_memory_access
        assert all(
            fusecu_ma <= perf.total_memory_access
            for name, perf in perfs.items()
            if name != "FuseCU"
        )

    def test_fusecu_fastest(self, perfs):
        fusecu_cycles = perfs["FuseCU"].total_cycles
        assert all(
            fusecu_cycles <= perf.total_cycles
            for name, perf in perfs.items()
            if name != "FuseCU"
        )

    def test_unfcu_captures_intra_share(self, perfs):
        """UnfCU sits between TPUv4i and FuseCU (paper Fig. 10)."""
        assert (
            perfs["FuseCU"].total_memory_access
            < perfs["UnfCU"].total_memory_access
            < perfs["TPUv4i"].total_memory_access
        )

    def test_headline_direction(self, perfs):
        saving = 1 - perfs["FuseCU"].total_memory_access / perfs[
            "TPUv4i"
        ].total_memory_access
        assert 0.3 < saving < 0.95  # paper: 63.6% for the 7-model average
        speedup = perfs["FuseCU"].speedup_over(perfs["TPUv4i"])
        assert 1.0 < speedup < 2.0  # paper: 1.33x average


class TestAnalyticalVsFunctional:
    def test_fusion_decision_realized_on_fusecu_array(self):
        """The analytical planner says fuse; the functional FuseCU array
        executes the fused chain exactly with zero intermediate traffic."""
        op1 = matmul("mm1", 12, 8, 12)
        op2 = matmul("mm2", 12, 12, 8, a=op1.output)
        decision = decide_fusion([op1, op2], 3000)
        assert decision.profitable
        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 8))
        b = rng.normal(size=(8, 12))
        d = rng.normal(size=(12, 8))
        run = FuseCUArray(FuseCUConfig(n=16)).tile_fusion(a, b, d)
        assert np.allclose(run.result, (a @ b) @ d)
        assert run.intermediate_traffic == 0

    def test_intermediate_saving_matches_intermediate_size(self):
        """Fusion's headline saving is exactly the intermediate round trip
        when both operators run at their unfused optima inside the nest."""
        op1 = matmul("mm1", 32, 16, 32)
        op2 = matmul("mm2", 32, 32, 16, a=op1.output)
        decision = decide_fusion([op1, op2], 10**6)  # everything fits
        c_size = op1.output.size
        saved = decision.unfused_memory_access - decision.fused_memory_access
        assert saved == 2 * c_size  # producer write + consumer read


class TestBufferSweepConsistency:
    def test_lower_bound_convergence(self):
        """MA(BS) converges to the ideal as BS grows, for all workload
        shapes in a BERT layer."""
        from repro.workloads import representative_matmuls

        for op in representative_matmuls(BERT):
            bound = intra_lower_bound(op, 10**9)
            assert bound == op.ideal_memory_access()
