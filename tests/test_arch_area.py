"""Tests for the gate-level area model (paper Fig. 12 headlines)."""

import pytest

from repro.arch import (
    AreaBreakdown,
    fusecu_area,
    gemmini_area,
    planaria_area,
    tpuv4i_area,
    unfcu_area,
)


class TestBaseline:
    def test_tpu_has_no_overhead_components(self):
        assert tpuv4i_area().overhead_ge == 0

    def test_component_shares_sum_to_one(self):
        breakdown = fusecu_area()
        assert sum(
            c.gate_equivalents for c in breakdown.components
        ) == breakdown.total_ge

    def test_mm2_positive(self):
        assert tpuv4i_area().total_mm2 > 0


class TestPaperHeadlines:
    def test_fusecu_overhead_close_to_12_percent(self):
        overhead = fusecu_area().overhead_over(tpuv4i_area())
        assert overhead == pytest.approx(0.12, abs=0.01)

    def test_interconnect_and_control_below_0p1_percent(self):
        fusecu = fusecu_area()
        share = fusecu.fraction("FuseCU resize interconnect") + fusecu.fraction(
            "fusion control units"
        )
        assert share < 0.001

    def test_planaria_overhead_close_to_12p6_percent(self):
        overhead = planaria_area().overhead_over(tpuv4i_area())
        assert overhead == pytest.approx(0.126, abs=0.01)

    def test_unfcu_slightly_below_fusecu(self):
        assert unfcu_area().total_ge < fusecu_area().total_ge
        assert unfcu_area().total_ge > tpuv4i_area().total_ge

    def test_gemmini_between_tpu_and_fusecu(self):
        assert tpuv4i_area().total_ge < gemmini_area().total_ge < fusecu_area().total_ge

    def test_xs_logic_dominates_fusecu_overhead(self):
        fusecu = fusecu_area()
        xs = next(
            c for c in fusecu.components if c.name == "XS PE logic"
        ).gate_equivalents
        assert xs / fusecu.overhead_ge > 0.99


class TestBreakdownAPI:
    def test_rows_shape(self):
        rows = fusecu_area().rows()
        assert all(
            set(row) == {"component", "GE", "mm2", "share", "overhead"}
            for row in rows
        )

    def test_fraction_unknown_component(self):
        with pytest.raises(KeyError):
            fusecu_area().fraction("nonexistent")

    def test_overhead_scales_with_pe_count(self):
        small = fusecu_area(total_pes=64 * 64, cu_dim=32, cus=4)
        big = fusecu_area(total_pes=128 * 128 * 4, cu_dim=128, cus=4)
        small_overhead = small.overhead_over(tpuv4i_area(total_pes=64 * 64))
        big_overhead = big.overhead_over(tpuv4i_area(total_pes=128 * 128 * 4))
        # XS logic is per-PE, so the relative overhead is scale-invariant
        # (edge/control terms shrink it negligibly).
        assert small_overhead == pytest.approx(big_overhead, abs=0.005)
