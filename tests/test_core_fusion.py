"""Tests for inter-operator fusion optimization (paper Sec. III-B, Fig. 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    cross_patterns,
    decide_fusion,
    optimize_fused,
    optimize_intra,
    per_op_nra_classes,
    profitable_patterns,
    solve_pattern,
)
from repro.dataflow import FusedChain, NRAClass, fused_memory_access
from repro.ir import matmul, rowwise_softmax
from repro.search import exhaustive_fused_search


def mm_pair(m=64, k=32, l=48, n=40, count=1):
    op1 = matmul("mm1", m, k, l, count=count)
    op2 = matmul("mm2", m, l, n, a=op1.output, count=count)
    return op1, op2


class TestPatternGeneration:
    def test_profitable_pattern_count(self):
        """Fig. 4 green arrows: 1 single + 2 two-osis + 2 two-untile +
        2 three-untile + 1 three-resident = 8 orientation-expanded."""
        chain = FusedChain.from_ops(mm_pair())
        assert len(profitable_patterns(chain)) == 8

    def test_cross_pattern_count(self):
        chain = FusedChain.from_ops(mm_pair())
        patterns = cross_patterns(chain)
        assert len(patterns) == 6
        assert all(p.cross_nra for p in patterns)

    def test_cross_patterns_pairs_only(self):
        op1, op2 = mm_pair()
        sm = rowwise_softmax("sm", op2.output)
        triple = FusedChain.from_ops([op1, op2, sm])
        assert cross_patterns(triple) == []

    def test_patterns_cover_all_dims(self):
        chain = FusedChain.from_ops(mm_pair())
        for pattern in profitable_patterns(chain) + cross_patterns(chain):
            assert set(pattern.roles) == set(chain.global_dims)


class TestSolvePattern:
    def test_solutions_fit_buffer(self):
        chain = FusedChain.from_ops(mm_pair())
        for budget in (50, 500, 5000, 50000):
            for pattern in profitable_patterns(chain):
                dataflow = solve_pattern(chain, pattern, budget)
                if dataflow is not None:
                    assert dataflow.buffer_footprint(chain) <= budget

    def test_untile_roles_resolved(self):
        chain = FusedChain.from_ops(mm_pair())
        pattern = next(
            p for p in profitable_patterns(chain) if p.label == "three-resident"
        )
        dataflow = solve_pattern(chain, pattern, 10**6)
        tiling = dataflow.resolved_tiling(chain)
        assert tiling["M"] == 64 and tiling["L"] == 48

    def test_infeasible_returns_none(self):
        chain = FusedChain.from_ops(mm_pair())
        pattern = next(
            p for p in profitable_patterns(chain) if p.label == "three-resident"
        )
        assert solve_pattern(chain, pattern, 10) is None


class TestOptimizeFused:
    def test_result_is_fusable(self):
        result = optimize_fused(mm_pair(), 2000)
        assert result is not None
        assert result.report.fusable

    def test_monotone_in_buffer(self):
        previous = None
        for budget in (100, 400, 1600, 6400, 25600):
            result = optimize_fused(mm_pair(), budget)
            if result is None:
                continue
            if previous is not None:
                assert result.memory_access <= previous
            previous = result.memory_access

    def test_large_buffer_reaches_fused_ideal(self):
        op1, op2 = mm_pair()
        chain = FusedChain.from_ops([op1, op2])
        result = optimize_fused([op1, op2], 10**6)
        assert result.memory_access == chain.ideal_memory_access()

    def test_never_loses_to_fused_search(self):
        for budget in (500, 2000, 10000, 50000):
            ops = mm_pair()
            principled = optimize_fused(ops, budget)
            searched = exhaustive_fused_search(ops, budget)
            if searched is not None:
                assert principled is not None
                assert principled.memory_access <= searched.memory_access

    def test_per_op_nra_classes_reported(self):
        result = optimize_fused(mm_pair(), 2000)
        assert len(result.per_op_nra) == 2
        assert all(isinstance(c, NRAClass) for c in result.per_op_nra)

    def test_three_op_chain_with_softmax(self):
        op1 = matmul("qk", 32, 8, 32, count=4)
        sm = rowwise_softmax("sm", op1.output, count=4)
        op2 = matmul("av", 32, 32, 8, a=sm.output, count=4)
        result = optimize_fused([op1, sm, op2], 3000)
        assert result is not None
        assert result.report.fusable
        # Intermediates (scores and probabilities) travel for free.
        assert result.report.per_tensor["qk.C"].accesses == 0
        assert result.report.per_tensor["sm.out"].accesses == 0

    def test_count_scaling(self):
        single = optimize_fused(mm_pair(count=1), 2000)
        repeated = optimize_fused(mm_pair(count=5), 2000)
        assert repeated.memory_access == 5 * single.memory_access


class TestProfitability:
    def test_same_nra_fusion_profitable(self):
        """Paper Principle 4, positive direction: same-NRA pairs win.

        Budgets chosen so both operators' optimal intra dataflows share a
        class (both Three-NRA here).
        """
        for budget in (5000, 100000):
            decision = decide_fusion(mm_pair(), budget)
            assert decision.predicted_profitable
            assert decision.profitable

    def test_fusion_eliminates_intermediate_traffic(self):
        op1, op2 = mm_pair()
        decision = decide_fusion([op1, op2], 5000)
        unfused_c = sum(
            r.report.per_tensor.get(
                "mm1.C",
                type("z", (), {"accesses": 0}),
            ).accesses
            for r in decision.unfused
        )
        assert unfused_c > 0
        assert decision.fused.report.per_tensor["mm1.C"].accesses == 0

    def test_cross_patterns_never_optimal(self):
        """Paper Principle 4, negative direction (red arrows of Fig. 4).

        The principle prescribes *how* to fuse: within a fused nest, give
        every operator the same NRA dataflow.  Verified here as: the best
        fused dataflow is never a cross-NRA pattern, across a spread of
        shapes and buffer sizes.
        """
        shapes = [
            (32, 32, 32, 32),
            (64, 16, 64, 16),
            (48, 48, 24, 48),
            (96, 32, 96, 32),
            (1024, 1024, 1024, 16),
        ]
        checked = 0
        for shape in shapes:
            for budget in (400, 1600, 6400, 25600):
                result = optimize_fused(mm_pair(*shape), budget, include_cross=True)
                if result is None:
                    continue
                checked += 1
                assert not result.pattern.cross_nra, (shape, budget, result.pattern)
        assert checked > 10

    def test_symmetric_pairs_predicted_and_measured_profitable(self):
        """For same-shape chains (the paper's qk/av, ffn1/ffn2 style) the
        Principle 4 prediction and the measured comparison agree."""
        for shape in ((32, 32, 32, 32), (64, 16, 64, 16), (96, 32, 96, 32)):
            for budget in (1600, 6400, 25600):
                decision = decide_fusion(mm_pair(*shape), budget, include_cross=True)
                assert decision.predicted_profitable, (shape, budget)
                assert decision.profitable, (shape, budget)

    def test_reproduction_finding_fusion_can_beat_prediction(self):
        """Documented deviation: with exact integer costing and the full
        pattern set, fusing a Single-NRA producer with a (nominally)
        Two-NRA consumer can still pay off -- the consumer simply runs in
        the producer's class and the intermediate's elimination dominates.
        Principle 4 remains correct about *which fused dataflow* to use
        (see test_cross_patterns_never_optimal); its binary fuse/don't-fuse
        reading is conservative.  Recorded in EXPERIMENTS.md.
        """
        op1 = matmul("mm1", 1024, 1024, 1024)
        op2 = matmul("mm2", 1024, 1024, 16, a=op1.output)
        decision = decide_fusion([op1, op2], 4000, include_cross=True)
        assert not decision.predicted_profitable
        assert decision.profitable
        assert not decision.fused.pattern.cross_nra

    def test_saving_zero_when_fusion_unavailable(self):
        from repro.core import FusionDecision

        op1, op2 = mm_pair()
        unfused = (optimize_intra(op1, 5000), optimize_intra(op2, 5000))
        decision = FusionDecision(
            ops=(op1, op2), fused=None, unfused=unfused, predicted_profitable=False
        )
        assert decision.saving == 0.0
        assert decision.fused_memory_access is None

    def test_saving_positive_when_profitable(self):
        decision = decide_fusion(mm_pair(), 5000)
        assert 0 < decision.saving < 1

    def test_describe_runs(self):
        decision = decide_fusion(mm_pair(), 5000)
        text = decision.describe()
        assert "profitable=True" in text
