"""Unit tests for repro.dataflow.mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.dataflow import (
    ArrayShape,
    FusedMappingKind,
    MappingError,
    SpatialMapping,
    best_array_utilization,
    classify_intermediate_tile,
)


class TestArrayShape:
    def test_pes(self):
        assert ArrayShape(128, 128).pes == 16384

    def test_invalid(self):
        with pytest.raises(MappingError):
            ArrayShape(0, 128)


class TestSpatialMapping:
    def test_perfect_fit(self):
        mapping = SpatialMapping(128, 128, ArrayShape(128, 128))
        assert mapping.passes == 1
        assert mapping.utilization == 1.0

    def test_half_rows(self):
        mapping = SpatialMapping(64, 128, ArrayShape(128, 128))
        assert mapping.utilization == 0.5

    def test_multi_pass_full_utilization(self):
        mapping = SpatialMapping(256, 256, ArrayShape(128, 128))
        assert mapping.passes == 4
        assert mapping.utilization == 1.0

    def test_ragged_tile(self):
        mapping = SpatialMapping(129, 128, ArrayShape(128, 128))
        assert mapping.passes == 2
        assert mapping.utilization == pytest.approx(129 / 256)

    def test_invalid_tile(self):
        with pytest.raises(MappingError):
            SpatialMapping(0, 4, ArrayShape(4, 4))

    @given(
        st.integers(1, 512),
        st.integers(1, 512),
        st.integers(1, 64),
        st.integers(1, 64),
    )
    def test_utilization_bounds(self, tr, tc, ar, ac):
        utilization = SpatialMapping(tr, tc, ArrayShape(ar, ac)).utilization
        assert 0 < utilization <= 1.0


class TestFusedMappingClassification:
    def test_tile_like(self):
        assert (
            classify_intermediate_tile((128, 128))
            is FusedMappingKind.TILE_FUSION
        )

    def test_column_like(self):
        assert (
            classify_intermediate_tile((128, 1))
            is FusedMappingKind.COLUMN_FUSION
        )
        assert (
            classify_intermediate_tile((1, 128))
            is FusedMappingKind.COLUMN_FUSION
        )

    def test_threshold(self):
        assert (
            classify_intermediate_tile((4, 128), column_threshold=4)
            is FusedMappingKind.COLUMN_FUSION
        )

    def test_invalid_shape(self):
        with pytest.raises(MappingError):
            classify_intermediate_tile((0, 4))


class TestBestArrayUtilization:
    def test_prefers_matching_aspect(self):
        shapes = (ArrayShape(128, 128), ArrayShape(64, 256))
        shape, utilization = best_array_utilization(64, 1024, shapes)
        assert (shape.rows, shape.cols) == (64, 256)
        assert utilization == 1.0

    def test_empty_shapes_rejected(self):
        with pytest.raises(MappingError):
            best_array_utilization(4, 4, ())

    def test_fusecu_narrow_wide_beats_fixed_square(self):
        """The Sec. IV-B motivation: untiled dims up to 2N need non-square
        arrays; a 256-wide tile wastes half a fixed 128x128 array."""
        fixed = best_array_utilization(64, 256, (ArrayShape(128, 128),))[1]
        flexible = best_array_utilization(
            64, 256, (ArrayShape(128, 128), ArrayShape(64, 256))
        )[1]
        assert flexible == 1.0
        assert fixed == 0.5
