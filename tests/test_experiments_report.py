"""Tests for the reproduction-report generator and remaining CLI paths."""

import pytest

from repro.cli import main
from repro.experiments import ReportOptions, generate_report


@pytest.fixture(scope="module")
def report():
    # Small sweep, no GA: keeps the test fast while exercising every
    # section of the report.
    return generate_report(
        ReportOptions(
            include_genetic=False,
            fig9_buffer_sweep=[64 * 1024, 1024 * 1024],
        )
    )


class TestReportGeneration:

    def test_contains_every_section(self, report):
        for heading in (
            "# Reproduction report",
            "## Tables I-III",
            "## Fig. 9",
            "## Fig. 10",
            "## Fig. 11",
            "## Fig. 12",
        ):
            assert heading in report

    def test_contains_paper_comparisons(self, report):
        assert "| quantity | paper | measured |" in report
        assert "FuseCU MA saving vs TPUv4i" in report

    def test_fig9_all_points_pass(self, report):
        # "N/N sampled points" with N == total.
        import re

        match = re.search(r"\*\*(\d+)/(\d+)\*\*", report)
        assert match is not None
        assert match.group(1) == match.group(2)

    def test_markdown_tables_balanced(self, report):
        fences = report.count("```")
        assert fences % 2 == 0


class TestReportCLI:
    def test_report_to_file(self, tmp_path, report):
        target = tmp_path / "report.md"
        target.write_text(report, encoding="utf-8")
        assert target.read_text(encoding="utf-8").startswith(
            "# Reproduction report"
        )

    def test_fig10_command(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "Headline averages" in out

    def test_fig11_command(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "seq len" in out
