"""Tests for convolution lowering (repro.ir.conv) and CNN workloads."""

import pytest

from repro.core import optimize_generic, optimize_intra
from repro.ir import Conv2DShape, conv2d, conv2d_as_matmul
from repro.ir.operator import OperatorError
from repro.workloads import RESNET50_LAYERS, layer_names


class TestConv2DShape:
    def test_output_geometry(self):
        shape = Conv2DShape(1, 3, 224, 224, 64, 7, 7, stride=2, padding=3)
        assert shape.out_height == 112
        assert shape.out_width == 112

    def test_same_padding_3x3(self):
        shape = Conv2DShape(1, 64, 56, 56, 64, 3, 3, stride=1, padding=1)
        assert shape.out_height == 56 and shape.out_width == 56

    def test_gemm_dims(self):
        shape = Conv2DShape(2, 16, 8, 8, 32, 3, 3, padding=1)
        assert shape.gemm_m == 2 * 8 * 8
        assert shape.gemm_k == 16 * 9
        assert shape.gemm_l == 32

    def test_macs(self):
        shape = Conv2DShape(1, 4, 6, 6, 8, 3, 3, padding=1)
        assert shape.macs == 36 * 36 * 8

    def test_im2col_duplication(self):
        shape = Conv2DShape(1, 16, 32, 32, 32, 3, 3, padding=1)
        # stride-1 3x3 windows duplicate each input element ~9x.
        assert shape.input_traffic_correction == pytest.approx(9.0, rel=0.01)

    def test_stride_reduces_duplication(self):
        dense = Conv2DShape(1, 16, 32, 32, 32, 3, 3, padding=1, stride=1)
        strided = Conv2DShape(1, 16, 32, 32, 32, 3, 3, padding=1, stride=2)
        assert strided.input_traffic_correction < dense.input_traffic_correction

    def test_degenerate_rejected(self):
        with pytest.raises(OperatorError, match="collapses"):
            Conv2DShape(1, 3, 2, 2, 4, 5, 5)

    def test_invalid_params(self):
        with pytest.raises(OperatorError):
            Conv2DShape(0, 3, 8, 8, 4, 3, 3)
        with pytest.raises(OperatorError):
            Conv2DShape(1, 3, 8, 8, 4, 3, 3, padding=-1)


class TestConvLowering:
    def test_lowered_operator_is_mm_like(self):
        from repro.core import is_mm_like

        op, shape = conv2d("c", 2, 16, 8, 8, 32, 3, padding=1)
        assert is_mm_like(op)
        assert op.dims == {"M": shape.gemm_m, "K": shape.gemm_k, "L": shape.gemm_l}

    def test_lowered_macs_match(self):
        op, shape = conv2d("c", 2, 16, 8, 8, 32, 3, padding=1)
        assert op.macs == shape.macs

    def test_principles_apply_to_conv(self):
        """The paper's generalization claim: conv optimizes like MM."""
        op, _shape = conv2d("c", 16, 64, 56, 56, 64, 3, padding=1)
        result = optimize_intra(op, 512 * 1024)
        assert result.memory_access >= op.ideal_memory_access()
        assert result.dataflow.buffer_footprint(op) <= 512 * 1024

    def test_conv_via_generic_entry_point(self):
        op, _shape = conv2d("c", 4, 32, 14, 14, 64, 3, padding=1)
        generic = optimize_generic(op, 64 * 1024)
        direct = optimize_intra(op, 64 * 1024)
        assert generic.memory_access == direct.memory_access


class TestResNetWorkloads:
    def test_all_layers_valid(self):
        for name, shape in RESNET50_LAYERS.items():
            op = conv2d_as_matmul(name, shape)
            assert op.macs == shape.macs

    def test_layer_names(self):
        assert "conv1" in layer_names()
        assert len(layer_names()) == len(RESNET50_LAYERS)

    def test_regime_diversity_across_stages(self):
        """Early layers are spatial-heavy, late ones channel-heavy; at a
        fixed buffer they land in different regimes (the point of using
        them as an extension workload)."""
        from repro.core import classify_buffer

        buffer_elems = 512 * 1024
        regimes = {
            name: classify_buffer(
                conv2d_as_matmul(name, shape), buffer_elems
            ).regime
            for name, shape in RESNET50_LAYERS.items()
        }
        assert len(set(regimes.values())) >= 2

    def test_optimize_every_stage(self):
        for name, shape in RESNET50_LAYERS.items():
            op = conv2d_as_matmul(name, shape)
            result = optimize_intra(op, 512 * 1024)
            assert result.memory_access >= op.ideal_memory_access()
