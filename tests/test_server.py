"""Integration tests for the serving daemon: a live server per test.

Each test boots a real :class:`ReproServer` on an ephemeral port and
talks to it with :class:`ReproClient` over actual sockets.  The pivotal
claims -- byte-identity with a direct ``run_batch``, correct 429/503
pushback, deadline mapping, lossless drain -- are all exercised against
the wire, not against mocks.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.server import (
    ProtocolMismatchWarning,
    ReproClient,
    ReproServer,
    ServerConfig,
    ServerError,
)
from repro.service import BatchEngine, EngineConfig, injected_faults, parse_request

REQUESTS = [
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
    {"kind": "fusion", "m": 96, "k": 64, "l": 80, "n": 72,
     "buffer_elems": 16384},
    {"kind": "sweep_point", "m": 32, "k": 32, "l": 32, "buffer_elems": 1024},
    "this line is not json",
    {"kind": "intra", "m": 64, "k": 32, "l": 48, "buffer_elems": 4096},
]


def make_server(**overrides):
    config = ServerConfig(port=0, jobs=2, **overrides)
    return ReproServer(config).start()


def make_client(server, **overrides):
    kwargs = {"max_attempts": 1, "sleep": lambda _s: None}
    kwargs.update(overrides)
    return ReproClient(port=server.port, **kwargs)


def direct_jsonl(payloads, **config_overrides):
    engine = BatchEngine(EngineConfig(jobs=2, **config_overrides))
    return engine.run_batch(
        [p if isinstance(p, str) else parse_request(p) for p in payloads]
    ).to_jsonl()


# ----------------------------------------------------------------------
# Byte-identity with the direct engine
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_batch_matches_direct_run_including_error_lines(self):
        with make_server() as server, make_client(server) as client:
            lines = client.batch_lines(REQUESTS)
        assert "\n".join(lines) == direct_jsonl(REQUESTS)
        records = [json.loads(line) for line in lines]
        assert [r["index"] for r in records] == list(range(len(REQUESTS)))
        assert records[3]["ok"] is False  # the raw non-JSON line

    def test_single_analyze_matches_batch_record(self):
        with make_server() as server, make_client(server) as client:
            record = client.analyze(REQUESTS[0])
        expected = json.loads(direct_jsonl([REQUESTS[0]]))
        assert record == expected

    def test_stream_batch_rewrites_global_indexes(self):
        with make_server() as server, make_client(server) as client:
            records = list(client.stream_batch(REQUESTS, chunk_size=2))
        direct = [json.loads(line) for line in direct_jsonl(REQUESTS).split("\n")]
        assert records == direct

    def test_concurrent_clients_all_get_identical_bytes(self):
        expected = direct_jsonl(REQUESTS)
        results = [None] * 6
        with make_server(max_concurrency=3) as server:

            def worker(slot):
                with make_client(server, max_attempts=5) as client:
                    results[slot] = "\n".join(client.batch_lines(REQUESTS))

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(len(results))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert results == [expected] * len(results)

    def test_cache_persists_across_calls(self):
        with make_server() as server, make_client(server) as client:
            client.batch_lines(REQUESTS)
            client.batch_lines(REQUESTS)
            stats = client.stats()
        # The whole second call (and the in-batch duplicate) hit the LRU.
        assert stats["cache"]["hits"] >= 4
        assert stats["serving"]["cached_answers"] >= 4


# ----------------------------------------------------------------------
# Observability endpoints
# ----------------------------------------------------------------------
class TestObservability:
    def test_healthz_carries_protocol_handshake(self):
        with make_server() as server, make_client(server) as client:
            health = client.health()
        assert health["ok"] is True
        assert health["server"] == "repro-server"
        assert isinstance(health["protocol"], int)
        assert health["draining"] is False

    def test_readyz_and_metrics_and_stats(self):
        with make_server() as server, make_client(server) as client:
            client.batch_lines(REQUESTS)
            assert client.ready() is True
            text = client.metrics()
            stats = client.stats()
            as_json = json.loads(client.metrics(fmt="json"))
        assert 'repro_serving_total{counter="requests_served"} 5' in text
        assert 'repro_latency_seconds{quantile="50"}' in text
        assert stats["serving"]["requests_served"] == len(REQUESTS)
        assert stats["latency"]["count"] == 1  # one analyze call
        assert stats["admission"]["admitted"] == 1
        # http_requests ticks on every scrape; the served-work counters
        # must agree between the JSON and text expositions.
        assert as_json["serving"]["requests_served"] == len(REQUESTS)
        assert as_json["serving"]["computed"] == stats["serving"]["computed"]

    def test_unknown_route_is_404_and_wrong_method_405(self):
        with make_server() as server, make_client(server) as client:
            with pytest.raises(ServerError) as not_found:
                client._request("GET", "/nope", retry=False)
            with pytest.raises(ServerError) as wrong_method:
                client._request("GET", "/v1/analyze", retry=False)
        assert not_found.value.status == 404
        assert wrong_method.value.status == 405

    def test_bad_body_is_400(self):
        with make_server() as server, make_client(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client._request(
                    "POST",
                    "/v1/analyze",
                    body=b"",
                    headers={"Content-Type": "application/json"},
                    retry=False,
                )
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# Admission pushback over the wire
# ----------------------------------------------------------------------
class TestAdmissionOverTheWire:
    def test_queue_full_returns_503_with_retry_after(self):
        with injected_faults("delay:intra:seconds=0.8"):
            with make_server(max_concurrency=1, queue_depth=0) as server:

                def slow_call():
                    with make_client(
                        server, timeout=30.0, max_attempts=10
                    ) as client:
                        client.batch_lines([REQUESTS[0]])

                thread = threading.Thread(target=slow_call, daemon=True)
                thread.start()
                # Wait until the slow call actually holds the only slot...
                for _ in range(500):
                    if server.app.stats_dict()["admission"]["active"]:
                        break
                    threading.Event().wait(0.01)
                rejected = None
                with make_client(server) as client:
                    # ...then the next arrival must be shed, not queued
                    # (queue_depth=0).
                    try:
                        client.batch_lines([REQUESTS[2]])
                    except ServerError as exc:
                        rejected = exc
                thread.join(timeout=30.0)
        assert rejected is not None, "server never shed load"
        assert rejected.status == 503
        assert rejected.payload["error"]["type"] == "QueueFullError"
        assert rejected.retry_after is not None and rejected.retry_after > 0

    def test_rate_limit_returns_429_with_retry_after(self):
        with make_server(rate_limit=0.001, burst=1) as server:
            with make_client(server, client_id="chatty") as client:
                client.batch_lines([REQUESTS[0]])
                with pytest.raises(ServerError) as excinfo:
                    client.batch_lines([REQUESTS[2]])
            # A different identity is not affected.
            with make_client(server, client_id="other") as client:
                client.batch_lines([REQUESTS[2]])
        assert excinfo.value.status == 429
        assert excinfo.value.payload["error"]["type"] == "RateLimitedError"
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 0

    def test_client_retries_through_pushback_to_identical_results(self):
        with make_server(rate_limit=4.0, burst=1) as server:
            # Real (default) sleep: the bucket refills a token in 0.25s
            # and the retry loop must ride the server's Retry-After hint
            # through the 429s to a successful, correct answer.
            with ReproClient(
                port=server.port,
                max_attempts=8,
                retry_base_delay=0.01,
            ) as client:
                first = client.batch_lines([REQUESTS[0]])
                # Bucket empty now: this submission must ride the retry
                # loop (real time passes while attempts back off).
                second = client.batch_lines([REQUESTS[2]])
                stats = client.stats()
        assert "\n".join(first) == direct_jsonl([REQUESTS[0]])
        assert "\n".join(second) == direct_jsonl([REQUESTS[2]])
        assert stats["admission"]["rejected_rate_limited"] >= 1

    def test_deadline_header_maps_to_engine_deadline(self):
        with injected_faults("delay:intra:seconds=0.4"):
            with make_server() as server:
                with make_client(server, timeout=30.0) as client:
                    records = client.run_batch([REQUESTS[0]], deadline=0.05)
        assert len(records) == 1
        assert records[0]["ok"] is False
        assert records[0]["error"]["type"] == "DeadlineExceededError"

    def test_invalid_deadline_is_400(self):
        with make_server() as server, make_client(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.run_batch([REQUESTS[0]], deadline=-1.0)
        assert excinfo.value.status == 400

    def test_max_deadline_caps_client_requests(self):
        with injected_faults("delay:intra:seconds=0.4"):
            with make_server(max_deadline=0.05) as server:
                with make_client(server, timeout=30.0) as client:
                    # The client asks for a generous hour; the server
                    # clamps it to its 50ms ceiling and the delay blows it.
                    records = client.run_batch([REQUESTS[0]], deadline=3600.0)
        assert records[0]["error"]["type"] == "DeadlineExceededError"


# ----------------------------------------------------------------------
# Drain: SIGTERM semantics, losslessly
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_completes_inflight_work_and_rejects_new(self):
        with injected_faults("delay:intra:seconds=0.4"):
            server = make_server()
            try:
                result = {}
                accepted = threading.Event()

                def inflight_call():
                    with make_client(server, timeout=30.0) as client:
                        accepted.set()
                        result["lines"] = client.batch_lines([REQUESTS[0]])

                thread = threading.Thread(target=inflight_call, daemon=True)
                thread.start()
                accepted.wait(timeout=5.0)
                # Give the request time to be admitted before draining.
                for _ in range(100):
                    if server.app.stats_dict()["admission"]["active"]:
                        break
                    threading.Event().wait(0.01)
                drained = server.shutdown(drain=True, timeout=30.0)
                thread.join(timeout=30.0)
            finally:
                server.shutdown(drain=False)
        assert drained is True
        # The accepted request was not lost to the shutdown.
        assert "\n".join(result["lines"]) == direct_jsonl([REQUESTS[0]])

    def test_draining_server_rejects_with_503(self):
        with make_server() as server:
            server.app.begin_drain()
            with make_client(server) as client:
                assert client.ready() is False
                with pytest.raises(ServerError) as excinfo:
                    client.batch_lines([REQUESTS[0]])
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"]["type"] == "ServerDrainingError"
        # The base hint (2.0s) is spread deterministically per client
        # over [base, base * 1.5] to break up retry herds.
        assert 2.0 <= excinfo.value.retry_after <= 3.0

    def test_shutdown_is_idempotent(self):
        server = make_server()
        assert server.shutdown(drain=True) is True
        assert server.shutdown(drain=True) is True


# ----------------------------------------------------------------------
# Protocol handshake
# ----------------------------------------------------------------------
class TestProtocolHandshake:
    def test_mismatch_warns_loudly_but_does_not_fail(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.server.client.PROTOCOL_VERSION", 999)
        with make_server() as server:
            with make_client(server) as client:
                with pytest.warns(ProtocolMismatchWarning):
                    lines = client.batch_lines([REQUESTS[0]])
        assert "\n".join(lines) == direct_jsonl([REQUESTS[0]])
        assert "protocol mismatch" in capsys.readouterr().err

    def test_matching_protocol_is_silent(self, capsys):
        with make_server() as server:
            with make_client(server) as client:
                client.handshake()
                client.handshake()  # cached, no second round-trip
        assert "WARNING" not in capsys.readouterr().err

    def test_paranoid_server_certifies_results(self):
        with make_server(paranoid=True) as server:
            with make_client(server) as client:
                record = client.analyze(REQUESTS[0])
                stats = client.stats()
        assert record["result"]["certification"]["ok"] is True
        assert stats["certification"]["certified"] == 1
