"""Tests for dataflow serialization (round trips through JSON)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from conftest import mm_ops
from repro.core import optimize_fused, optimize_intra
from repro.dataflow import (
    SerializationError,
    dataflow_from_dict,
    dataflow_to_dict,
    fused_dataflow_from_dict,
    fused_dataflow_to_dict,
    memory_access,
    report_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    tiling_from_dict,
    tiling_to_dict,
)
from repro.ir import matmul


def json_round_trip(payload):
    """Force the payload through an actual JSON encode/decode."""
    return json.loads(json.dumps(payload))


class TestRoundTrips:
    def test_tiling(self):
        op = matmul("mm", 8, 6, 10)
        result = optimize_intra(op, 60)
        payload = json_round_trip(tiling_to_dict(result.dataflow.tiling))
        assert tiling_from_dict(payload).tiles == result.dataflow.tiling.tiles

    def test_schedule(self):
        op = matmul("mm", 8, 6, 10)
        result = optimize_intra(op, 60)
        payload = json_round_trip(schedule_to_dict(result.dataflow.schedule))
        assert schedule_from_dict(payload).order == result.dataflow.schedule.order

    def test_dataflow_preserves_cost(self):
        """The decisive check: a round-tripped dataflow costs the same."""
        op = matmul("mm", 64, 48, 56)
        result = optimize_intra(op, 2000)
        payload = json_round_trip(dataflow_to_dict(result.dataflow))
        restored = dataflow_from_dict(payload)
        assert memory_access(op, restored).total == result.memory_access

    def test_fused_dataflow(self):
        op1 = matmul("mm1", 32, 16, 24)
        op2 = matmul("mm2", 32, 24, 20, a=op1.output)
        result = optimize_fused([op1, op2], 2000)
        payload = json_round_trip(fused_dataflow_to_dict(result.dataflow))
        restored = fused_dataflow_from_dict(payload)
        assert restored.shared_order == result.dataflow.shared_order
        assert restored.private_orders == result.dataflow.private_orders
        from repro.dataflow import FusedChain, fused_memory_access

        chain = FusedChain.from_ops([op1, op2])
        assert (
            fused_memory_access(chain, restored).total == result.memory_access
        )

    @given(mm_ops(max_dim=32), st.integers(20, 2000))
    @settings(max_examples=30, deadline=None)
    def test_random_dataflows_round_trip(self, op, budget):
        from repro.core import InfeasibleError

        try:
            result = optimize_intra(op, budget)
        except InfeasibleError:
            return
        payload = json_round_trip(dataflow_to_dict(result.dataflow))
        restored = dataflow_from_dict(payload)
        assert memory_access(op, restored).total == result.memory_access


class TestReportExport:
    def test_report_dict_shape(self):
        op = matmul("mm", 8, 6, 10, count=3)
        result = optimize_intra(op, 60)
        payload = json_round_trip(report_to_dict(result.report))
        assert payload["operator"] == "mm"
        assert payload["count"] == 3
        assert payload["total"] == result.memory_access
        assert set(payload["per_tensor"]) == {"mm.A", "mm.B", "mm.C"}


class TestValidation:
    def test_missing_key(self):
        with pytest.raises(SerializationError, match="missing"):
            tiling_from_dict({"kind": "tiling"})

    def test_wrong_type(self):
        with pytest.raises(SerializationError, match="mapping"):
            tiling_from_dict({"tiles": [1, 2, 3]})

    def test_fused_private_orders_type(self):
        with pytest.raises(SerializationError, match="mapping"):
            fused_dataflow_from_dict(
                {
                    "shared_order": ["M"],
                    "private_orders": ["K"],
                    "tiling": {"tiles": {"M": 1}},
                }
            )
