"""Tests for the dataflow execution engine (analytical <-> functional)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import execute_matmul_dataflow, validate_against_analytical
from repro.core import all_candidates, optimize_intra
from repro.dataflow import Dataflow, Schedule, Tiling, UNTILED
from repro.ir import matmul


def small_problem(seed=0, m=12, k=8, l=10):
    rng = np.random.default_rng(seed)
    op = matmul("mm", m, k, l)
    return op, rng.normal(size=(m, k)), rng.normal(size=(k, l))


class TestNumerics:
    def test_output_stationary(self):
        op, a, b = small_problem()
        df = Dataflow(Tiling({"M": 4, "L": 5, "K": 1}), Schedule(("M", "L", "K")))
        result = execute_matmul_dataflow(op, df, a, b)
        assert np.allclose(result.output, a @ b)

    def test_spilling_dataflow(self):
        """A-stationary spills C partial sums; the merge must still be exact."""
        op, a, b = small_problem()
        df = Dataflow(Tiling({"M": 4, "K": 4, "L": 1}), Schedule(("M", "K", "L")))
        result = execute_matmul_dataflow(op, df, a, b)
        assert np.allclose(result.output, a @ b)

    def test_shape_mismatch_rejected(self):
        op, a, b = small_problem()
        df = Dataflow(Tiling({"M": 4, "L": 5, "K": 1}), Schedule(("M", "L", "K")))
        with pytest.raises(ValueError, match="mismatch"):
            execute_matmul_dataflow(op, df, a.T, b)

    @given(st.integers(0, 10**6), st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_dataflows_exact(self, seed, data):
        op, a, b = small_problem(seed)
        tiles = {
            dim: data.draw(st.integers(1, extent), label=dim)
            for dim, extent in op.dims.items()
        }
        order = tuple(data.draw(st.permutations(list(op.dims)), label="order"))
        df = Dataflow(Tiling(tiles), Schedule(order))
        result = execute_matmul_dataflow(op, df, a, b)
        assert np.allclose(result.output, a @ b)


class TestTrafficValidation:
    """Measured boundary traffic == the analytical access counts."""

    @pytest.mark.parametrize(
        "tiles,order",
        [
            ({"M": 4, "L": 5, "K": 1}, ("M", "L", "K")),
            ({"M": 4, "K": 4, "L": 1}, ("M", "K", "L")),
            ({"M": 3, "L": 1, "K": UNTILED}, ("M", "L", "K")),
            ({"M": 1, "L": UNTILED, "K": UNTILED}, ("M", "L", "K")),
            ({"M": 5, "K": 3, "L": 7}, ("L", "K", "M")),
            ({"M": 2, "K": 2, "L": 2}, ("K", "M", "L")),
        ],
    )
    def test_named_dataflows(self, tiles, order):
        op, a, b = small_problem()
        df = Dataflow(Tiling(tiles), Schedule(order))
        matches, comparison = validate_against_analytical(op, df, a, b)
        assert matches, comparison

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_dataflows(self, data):
        op, a, b = small_problem()
        tiles = {
            dim: data.draw(st.integers(1, extent), label=dim)
            for dim, extent in op.dims.items()
        }
        order = tuple(data.draw(st.permutations(list(op.dims)), label="order"))
        df = Dataflow(Tiling(tiles), Schedule(order))
        matches, comparison = validate_against_analytical(op, df, a, b)
        assert matches, (tiles, order, comparison)

    def test_all_principle_candidates(self):
        """Every closed-form candidate's predicted traffic is realized."""
        op, a, b = small_problem()
        for candidate in all_candidates(op, 200):
            matches, comparison = validate_against_analytical(
                op, candidate.dataflow, a, b
            )
            assert matches, (candidate.label, comparison)

    def test_optimal_dataflow_end_to_end(self):
        """The one-shot optimum, executed with real data: correct result
        and exactly the predicted lower-bound traffic."""
        op, a, b = small_problem(m=24, k=16, l=20)
        result = optimize_intra(op, 400)
        execution = execute_matmul_dataflow(op, result.dataflow, a, b)
        assert np.allclose(execution.output, a @ b)
        matches, comparison = validate_against_analytical(
            op, result.dataflow, a, b
        )
        assert matches, comparison
        measured_total = sum(measured for measured, _ in comparison.values())
        assert measured_total == result.memory_access
