"""The chaos layer: seeded schedules, jitter, fallback routing, harness.

Unit-level coverage for the deterministic pieces (timeline generation
and grammar, Retry-After jitter, rendezvous fallback, the bench
regression guard) plus one real quick-profile soak through
:func:`repro.chaos.run_chaos` -- worker kills, a journal disk fault,
and a SIGSTOP stall against a live 2-shard fleet.
"""

from __future__ import annotations

import pytest

from repro.bench import check_regression
from repro.chaos import (
    CHAOS_GRID,
    CHAOS_PROFILES,
    CORRUPT_MODES,
    ChaosConfig,
    ChaosEvent,
    churn_payload,
    describe_timeline,
    format_event,
    format_timeline,
    generate_timeline,
    oracle_jsonl,
    parse_event,
    parse_timeline,
    run_chaos,
)
from repro.server.admission import jittered_retry_after
from repro.shard import (
    RespawnPolicy,
    rendezvous_fallback,
    rendezvous_ranking,
    rendezvous_shard,
)


# ----------------------------------------------------------------------
# Timeline generation and grammar
# ----------------------------------------------------------------------
class TestSchedule:
    def test_same_seed_same_timeline(self):
        for profile in CHAOS_PROFILES:
            a = generate_timeline(7, 3, 30.0, profile)
            b = generate_timeline(7, 3, 30.0, profile)
            assert a == b
            assert format_timeline(a) == format_timeline(b)

    def test_different_seeds_differ(self):
        assert generate_timeline(7, 3, 30.0) != generate_timeline(8, 3, 30.0)

    def test_grammar_round_trips(self):
        events = generate_timeline(7, 3, 30.0)
        assert parse_timeline(format_timeline(events)) == events

    def test_parse_event_full_grammar(self):
        event = parse_event("stall@2.5:shard=1:duration=3")
        assert event == ChaosEvent(
            at=2.5, action="stall", shard=1, duration=3.0
        )
        event = parse_event("journal_fault@5:shard=2:mode=eio")
        assert event.mode == "eio"
        event = parse_event("crashloop@1:shard=0:count=0")
        assert event.count == 0
        event = parse_event("resize@3:shards=4")
        assert event == ChaosEvent(at=3.0, action="resize", shards=4)
        assert parse_event(format_event(event)) == event
        event = parse_event("hotspot@5:key=2:count=40")
        assert event == ChaosEvent(
            at=5.0, action="hotspot", key="2", count=40
        )
        assert parse_event(format_event(event)) == event

    def test_parse_durability_actions(self):
        event = parse_event("corrupt@2.5:shard=1:mode=mid")
        assert event == ChaosEvent(
            at=2.5, action="corrupt", shard=1, mode="mid"
        )
        assert parse_event(format_event(event)) == event
        for mode in CORRUPT_MODES:
            assert parse_event(f"corrupt@1:shard=0:mode={mode}").mode == mode
        event = parse_event("kill_compact@4:shard=0")
        assert event == ChaosEvent(at=4.0, action="kill_compact", shard=0)
        assert parse_event(format_event(event)) == event

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "kill",  # no @offset
            "kill@2",  # no shard
            "kill@2:shard=1:bogus=3",  # unknown operand
            "explode@2:shard=1",  # unknown action
            "stall@2:shard=1",  # stall without duration
            "journal_fault@2:shard=1:mode=sharknado",  # bad mode
            "kill@2:shard=1:shard=2",  # duplicate operand
            "kill@-1:shard=0",  # negative offset
            "resize@3",  # resize without a target size
            "resize@3:shard=1:shards=4",  # tier action takes no shard
            "resize@3:shards=0",  # fleet cannot shrink to nothing
            "hotspot@5",  # hotspot without a key
            "hotspot@5:shard=0:key=1",  # tier action takes no shard
            "kill@2:shard=1:shards=3",  # shards= only valid on resize
            "kill@2:shard=1:key=x",  # key= only valid on hotspot
            "corrupt@2:shard=1",  # corrupt requires a mode
            "corrupt@2:shard=1:mode=sideways",  # not a corrupt mode
            "kill_compact@2:shard=1:mode=mid",  # takes no mode
            "kill_compact@2",  # slot action needs a shard
        ],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_event(spec)

    def test_journal_fault_shard_is_never_killed_afterwards(self):
        # The invariant that makes disk-fault survival verifiable: a
        # dead worker would take its degraded journal evidence with it.
        for seed in range(25):
            for shards in (2, 3, 5):
                events = generate_timeline(seed, shards, 30.0)
                faults = [e for e in events if e.action == "journal_fault"]
                assert faults, "full profile always arms a journal fault"
                cutoff, victim = faults[0].at, faults[0].shard
                assert not any(
                    e.shard == victim
                    and e.at >= cutoff
                    and e.action in ("kill", "crashloop")
                    for e in events
                )

    def test_overlap_profile_structure(self):
        # The overlap profile is the multi-fault proof: a crash loop is
        # in flight when the tier grows, a disk fault lands during the
        # flux, and the fleet shrinks back before the final kill.
        for seed in (7, 11, 23):
            events = generate_timeline(seed, 2, 18.0, "overlap")
            actions = [e.action for e in events]
            assert actions[0] == "crashloop"
            assert actions[-1] == "kill"
            resizes = [e for e in events if e.action == "resize"]
            assert [e.shards for e in resizes] == [4, 2]
            hotspots = [e for e in events if e.action == "hotspot"]
            assert len(hotspots) == 1 and hotspots[0].key
            faults = [e for e in events if e.action == "journal_fault"]
            assert faults and 0 <= faults[0].shard < 2
            assert [e.at for e in events] == sorted(e.at for e in events)

    def test_latency_profile_is_ipc_delay_heavy(self):
        events = generate_timeline(7, 3, 30.0, "latency")
        delays = [e for e in events if e.action == "ipc_delay"]
        assert len(delays) >= 2
        assert all(e.duration > 0 for e in delays)
        assert sum(1 for e in events if e.action == "kill") == 1

    def test_durability_profile_structure(self):
        # The durability profile is the journal attack: two byte-level
        # corruptions (the second always a torn tail), one SIGKILL
        # mid-compaction, and a final plain kill of the first victim to
        # prove its quarantined journal replays again.
        assert "durability" in CHAOS_PROFILES
        for seed in (7, 11, 23):
            events = generate_timeline(seed, 3, 20.0, "durability")
            corrupts = [e for e in events if e.action == "corrupt"]
            assert len(corrupts) == 2
            assert all(e.mode in CORRUPT_MODES for e in corrupts)
            assert corrupts[-1].mode == "tail"
            kills = [e for e in events if e.action == "kill_compact"]
            assert len(kills) == 1
            assert events[-1].action == "kill"
            assert events[-1].shard == corrupts[0].shard
            assert [e.at for e in events] == sorted(e.at for e in events)
        # Two shards still generate a legal schedule (victims overlap).
        small = generate_timeline(7, 2, 20.0, "durability")
        assert all(0 <= e.shard < 2 for e in small)

    def test_describe_covers_every_event(self):
        events = generate_timeline(7, 3, 30.0)
        lines = describe_timeline(events)
        assert len(lines) == len(events)
        assert any("crashloop" in line for line in lines)
        assert any("mode=" in line for line in lines)

    def test_generator_validates_inputs(self):
        with pytest.raises(ValueError):
            generate_timeline(7, 1, 30.0)  # no survivors to reroute to
        with pytest.raises(ValueError):
            generate_timeline(7, 3, 0.0)
        with pytest.raises(ValueError):
            generate_timeline(7, 3, 30.0, "leisurely")


# ----------------------------------------------------------------------
# Deterministic Retry-After jitter
# ----------------------------------------------------------------------
class TestRetryJitter:
    def test_deterministic_per_client(self):
        a = jittered_retry_after(2.0, "client-a", seed=7)
        assert a == jittered_retry_after(2.0, "client-a", seed=7)

    def test_spread_breaks_up_the_herd(self):
        hints = {
            jittered_retry_after(2.0, f"client-{i}", seed=7)
            for i in range(16)
        }
        assert len(hints) == 16  # all distinct: no retry stampede

    def test_bounded_multiplicative_spread(self):
        for i in range(64):
            hint = jittered_retry_after(2.0, f"c{i}", seed=3)
            assert 2.0 <= hint <= 3.0

    def test_seed_changes_the_mapping(self):
        assert jittered_retry_after(2.0, "x", seed=1) != jittered_retry_after(
            2.0, "x", seed=2
        )

    def test_degenerate_inputs_pass_through(self):
        assert jittered_retry_after(0.0, "x") == 0.0
        assert jittered_retry_after(-1.0, "x") == -1.0
        assert jittered_retry_after(2.0, "x", spread=0.0) == 2.0


# ----------------------------------------------------------------------
# Rendezvous fallback routing
# ----------------------------------------------------------------------
class TestRendezvousFallback:
    def test_no_exclusion_matches_owner(self):
        for key in ("alpha", "beta", "gamma"):
            assert rendezvous_fallback(key, 5) == rendezvous_shard(key, 5)

    def test_excluding_the_owner_yields_second_choice(self):
        key = "some-request-key"
        ranking = rendezvous_ranking(key, 5)
        assert rendezvous_fallback(key, 5, {ranking[0]}) == ranking[1]
        assert (
            rendezvous_fallback(key, 5, set(ranking[:3])) == ranking[3]
        )

    def test_all_excluded_returns_none(self):
        assert rendezvous_fallback("key", 3, {0, 1, 2}) is None

    def test_survivors_keep_their_keys(self):
        # Excluding a shard never re-homes keys it did not own.
        for key in (f"key-{i}" for i in range(40)):
            owner = rendezvous_shard(key, 4)
            dead = (owner + 1) % 4
            assert rendezvous_fallback(key, 4, {dead}) == owner


# ----------------------------------------------------------------------
# RespawnPolicy validation
# ----------------------------------------------------------------------
class TestRespawnPolicy:
    def test_defaults_are_sane(self):
        policy = RespawnPolicy()
        assert policy.backoff_base > 0
        assert policy.max_rapid_deaths >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            # backoff of exactly 0 is legal (immediate respawns); only
            # negatives are nonsense.
            {"backoff_base": -0.1},
            {"backoff_max": -1.0},
            {"max_rapid_deaths": 0},
            {"death_window": 0.0},
            {"failed_retry_interval": 0.0},
        ],
    )
    def test_rejects_non_positive_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RespawnPolicy(**kwargs)


# ----------------------------------------------------------------------
# Bench regression guard
# ----------------------------------------------------------------------
class TestBenchGuard:
    @staticmethod
    def _doc(rps, schema=1):
        return {"schema": schema, "batch": {"requests_per_second": rps}}

    def test_within_tolerance_passes(self):
        assert check_regression(self._doc(80.0), self._doc(100.0)) == []
        assert check_regression(self._doc(120.0), self._doc(100.0)) == []

    def test_collapse_fails_loud(self):
        problems = check_regression(self._doc(60.0), self._doc(100.0))
        assert len(problems) == 1
        assert "regressed" in problems[0]
        assert "40.0%" in problems[0]

    def test_schema_mismatch_refuses_to_compare(self):
        problems = check_regression(
            self._doc(100.0), self._doc(100.0, schema=0)
        )
        assert "schema mismatch" in problems[0]

    def test_useless_baseline_refuses(self):
        problems = check_regression(self._doc(100.0), {"schema": 1})
        assert "re-baseline" in problems[0]

    def test_max_regression_bounds(self):
        with pytest.raises(ValueError):
            check_regression(self._doc(1), self._doc(1), max_regression=0.0)
        with pytest.raises(ValueError):
            check_regression(self._doc(1), self._doc(1), max_regression=1.0)


# ----------------------------------------------------------------------
# Harness pieces
# ----------------------------------------------------------------------
class TestHarnessUnits:
    def test_oracle_is_deterministic(self):
        assert oracle_jsonl(CHAOS_GRID) == oracle_jsonl(CHAOS_GRID)
        assert len(oracle_jsonl(CHAOS_GRID).splitlines()) == len(CHAOS_GRID)

    def test_churn_payloads_have_fresh_keys(self):
        from repro.service import parse_request, request_key

        keys = {
            request_key(parse_request(churn_payload(i))) for i in range(200)
        }
        assert len(keys) == 200


# ----------------------------------------------------------------------
# One real quick soak (kill + disk fault + stall on a live fleet)
# ----------------------------------------------------------------------
class TestQuickSoak:
    def test_quick_profile_passes(self):
        report = run_chaos(
            ChaosConfig(
                seed=11,
                shards=2,
                duration=4.0,
                profile="quick",
                log=lambda message: None,
            )
        )
        assert report.invariant_failures == []
        assert report.oracle_mismatches == 0
        assert report.iterations > 0
        assert report.respawns >= 1  # the scheduled kill respawned
        assert report.journal_degraded is True  # disk fault survived
        assert report.readyz_samples == report.iterations


# ----------------------------------------------------------------------
# One real durability soak (journal corruption + mid-compaction kill)
# ----------------------------------------------------------------------
class TestDurabilitySoak:
    def test_corruption_and_compact_kill_survive(self):
        # A fixed timeline rather than the seeded profile so the test
        # pins down exactly one corruption mode and one compact kill.
        report = run_chaos(
            ChaosConfig(
                seed=11,
                shards=2,
                duration=5.0,
                events=parse_timeline(
                    "corrupt@1.2:shard=0:mode=mid;"
                    "kill_compact@3.0:shard=1"
                ),
                log=lambda message: None,
            )
        )
        assert report.invariant_failures == []
        assert report.oracle_mismatches == 0
        assert report.corruptions == 1
        assert report.corrupt_quarantined >= 1  # flipped byte detected
        assert report.compact_kills == 1
        assert report.compactions >= 1  # retried compaction completed
        assert report.journals_valid is True  # post-soak fsck clean
        assert report.respawns >= 2
