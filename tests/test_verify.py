"""Certification layer tests: independent audits, healing, paranoid mode.

The verify package re-derives every claim the analytical optimizer makes
-- footprint, memory-access count, lower bound, regime -- from the raw
loop nest, without importing :mod:`repro.dataflow.cost`.  These tests
check three things:

* **agreement**: the independent auditors reproduce the analytical
  numbers on random workloads across all four buffer regimes, and a
  literal tile-by-tile simulation agrees with both;
* **detection**: a corrupted memory-access claim is caught by the cost
  auditor (seeded fault injection, no hardware required);
* **healing**: in paranoid mode a budgeted branch-and-bound probe
  replaces a beaten analytical answer with the certified-better dataflow
  and records a structured discrepancy report.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import mm_ops
from repro.cli import main
from repro.core import (
    InvalidWorkloadError,
    classify_buffer,
    optimize_fused,
    optimize_intra,
    validate_buffer_elems,
)
from repro.dataflow import memory_access
from repro.dataflow.cost import PartialSumConvention
from repro.ir import matmul
from repro.service import (
    PERMANENT,
    BatchEngine,
    EngineConfig,
    apply_paranoid,
    classify_exception,
    fusion_request,
    intra_request,
    request_key,
)
from repro.verify import (
    CertificationError,
    audit_fused_memory_access,
    audit_footprint,
    audit_memory_access,
    certify_fused,
    certify_intra,
    drain_discrepancies,
    simulate_memory_access,
)

#: The pinned ROADMAP counterexample: green-only fusion picks the wrong
#: shared loop order unless cross patterns (or the B&B fallback) run.
COUNTER = dict(m=43, k=2, l=19, n=23, budget=173)


def counter_ops():
    mm1 = matmul("mm1", COUNTER["m"], COUNTER["k"], COUNTER["l"])
    mm2 = matmul("mm2", COUNTER["m"], COUNTER["l"], COUNTER["n"], a=mm1.output)
    return [mm1, mm2]


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts and ends with an empty discrepancy registry."""
    drain_discrepancies()
    yield
    drain_discrepancies()


# ----------------------------------------------------------------------
# Independent auditors agree with the analytical layer
# ----------------------------------------------------------------------
class TestAuditors:
    @given(mm_ops(min_dim=2, max_dim=64), st.integers(8, 60_000))
    @settings(max_examples=60, deadline=None)
    def test_audit_matches_analytical(self, op, budget):
        """The re-derived counters reproduce cost.py on random optima."""
        result = optimize_intra(op, budget)
        dataflow = result.dataflow
        assert audit_footprint(op, dataflow) <= budget
        recounted = audit_memory_access(op, dataflow)
        assert recounted == result.memory_access
        assert recounted == memory_access(op, dataflow).total

    @given(mm_ops(min_dim=2, max_dim=14), st.integers(8, 400))
    @settings(max_examples=40, deadline=None)
    def test_simulation_matches_audit(self, op, budget):
        """Literally iterating the tile grid charges the audited count."""
        result = optimize_intra(op, budget)
        simulated = simulate_memory_access(op, result.dataflow)
        assert simulated is not None
        assert simulated == audit_memory_access(op, result.dataflow)

    @given(mm_ops(min_dim=2, max_dim=12), st.integers(8, 300))
    @settings(max_examples=20, deadline=None)
    def test_simulation_read_write_convention(self, op, budget):
        convention = PartialSumConvention.READ_WRITE
        result = optimize_intra(op, budget, convention=convention)
        simulated = simulate_memory_access(
            op, result.dataflow, convention=convention
        )
        assert simulated == audit_memory_access(
            op, result.dataflow, convention=convention
        )
        assert simulated == result.memory_access

    def test_simulation_budget_returns_none(self, bert_op):
        result = optimize_intra(bert_op, 4096)
        assert simulate_memory_access(bert_op, result.dataflow, limit=10) is None


# ----------------------------------------------------------------------
# Intra certification across all four regimes
# ----------------------------------------------------------------------
class TestCertifyIntra:
    @given(mm_ops(min_dim=2, max_dim=64), st.integers(8, 200_000))
    @settings(max_examples=60, deadline=None)
    def test_certificates_hold_across_regimes(self, op, budget):
        certified = certify_intra(op, budget)
        assert certified.certificate.ok, certified.certificate.failure_summaries()
        assert not certified.certificate.healed
        assert certified.result.certificate is certified.certificate
        # The regime named in the certificate is the classifier's answer.
        regime = certified.certificate.check("regime")
        assert regime is not None and regime.passed
        assert classify_buffer(op, budget).regime == certified.result.regime.regime

    @given(mm_ops(min_dim=2, max_dim=24), st.integers(8, 2_000))
    @settings(max_examples=25, deadline=None)
    def test_paranoid_probe_never_beats_principles(self, op, budget):
        """B&B cross-check: the analytical intra optimum survives."""
        certified = certify_intra(op, budget, paranoid=True, probe_nodes=50_000)
        assert certified.certificate.ok
        probe = certified.certificate.check("optimality_probe")
        if probe is not None:  # exhausted probes are skipped, never failed
            assert probe.passed

    def test_certificate_serializes(self, small_op):
        certified = certify_intra(small_op, 512, paranoid=True)
        blob = json.dumps(certified.certificate.as_dict(), sort_keys=True)
        assert "cost_audit" in blob
        assert "optimality_probe" in blob


# ----------------------------------------------------------------------
# Fused certification
# ----------------------------------------------------------------------
class TestCertifyFused:
    @given(
        mm_ops(min_dim=2, max_dim=32),
        st.integers(2, 32),
        st.integers(64, 40_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_certificates_hold(self, producer, n, budget):
        p = matmul("p", *(producer.dims[d] for d in ("M", "K", "L")))
        ops = [p, matmul("c", p.dims["M"], p.dims["L"], n, a=p.output)]
        result = optimize_fused(ops, budget, include_cross=True)
        if result is None:  # infeasible at this budget: nothing to certify
            return
        certified = certify_fused(
            ops, budget, result=result, include_cross=True
        )
        assert certified.certificate.ok, certified.certificate.failure_summaries()

    def test_counterexample_not_healed_with_cross(self):
        """After the shared-order fix, full cross search matches B&B."""
        ops = counter_ops()
        certified = certify_fused(
            ops, COUNTER["budget"], include_cross=True, paranoid=True
        )
        assert certified.certificate.ok
        assert not certified.certificate.healed
        assert drain_discrepancies() == ()


# ----------------------------------------------------------------------
# Fault injection: corruption is caught; paranoid mode heals
# ----------------------------------------------------------------------
class TestCorruptionAndHealing:
    def test_corrupted_claim_caught_by_auditor(self, small_op):
        true_ma = optimize_intra(small_op, 512).memory_access
        certified = certify_intra(
            small_op, 512, claimed_memory_access=true_ma - 7
        )
        certificate = certified.certificate
        assert not certificate.ok
        failed = {check.name for check in certificate.failures()}
        assert "cost_audit" in failed
        assert "bound" in failed  # 7 below the optimum undercuts the bound

    def test_paranoid_heals_corrupted_claim(self, small_op):
        true_ma = optimize_intra(small_op, 512).memory_access
        certified = certify_intra(
            small_op, 512, claimed_memory_access=true_ma - 7, paranoid=True
        )
        certificate = certified.certificate
        assert certificate.ok and certificate.healed
        assert certified.result.memory_access == true_ma
        assert certificate.discrepancy is not None
        assert certificate.discrepancy.reason == "failed_audit"
        reports = drain_discrepancies()
        assert len(reports) == 1 and reports[0].healed

    def test_paranoid_heals_green_only_counterexample(self):
        """The seeded search-layer fault: green-only picks MA=4050; the
        B&B fallback returns the certified 3936 dataflow."""
        ops = counter_ops()
        green_only = optimize_fused(ops, COUNTER["budget"], include_cross=False)
        assert green_only is not None
        certified = certify_fused(
            ops,
            COUNTER["budget"],
            result=green_only,
            include_cross=False,
            paranoid=True,
        )
        certificate = certified.certificate
        assert certificate.ok and certificate.healed
        assert certified.result.memory_access < green_only.memory_access
        discrepancy = certificate.discrepancy
        assert discrepancy is not None
        assert discrepancy.claimed_memory_access == green_only.memory_access
        assert (
            discrepancy.certified_memory_access
            == certified.result.memory_access
        )
        assert discrepancy.improvement > 0
        # The healed answer is exactly the full cross-pattern optimum.
        full = optimize_fused(ops, COUNTER["budget"], include_cross=True)
        assert certified.result.memory_access == full.memory_access

    def test_certification_error_is_permanent(self):
        assert classify_exception(CertificationError("bad")) == PERMANENT


# ----------------------------------------------------------------------
# Input validation at the ir/core boundary
# ----------------------------------------------------------------------
class TestInvalidWorkload:
    @pytest.mark.parametrize("bad", [0, -5, 2.5, float("nan"), True])
    def test_bad_buffer_rejected(self, bad):
        with pytest.raises(InvalidWorkloadError):
            validate_buffer_elems(bad)

    def test_optimize_intra_validates_buffer(self, small_op):
        with pytest.raises(InvalidWorkloadError):
            optimize_intra(small_op, 0)

    def test_integral_float_budget_accepted(self):
        assert validate_buffer_elems(512.0) == 512

    def test_invalid_workload_is_permanent(self):
        assert classify_exception(InvalidWorkloadError("bad")) == PERMANENT


# ----------------------------------------------------------------------
# Service integration: certify/paranoid knobs, report surfacing
# ----------------------------------------------------------------------
class TestServiceCertification:
    def test_paranoid_batch_surfaces_discrepancy(self):
        engine = BatchEngine(EngineConfig(jobs=1, paranoid=True))
        report = engine.run_batch(
            [
                intra_request(64, 32, 48, buffer_elems=1024),
                fusion_request(
                    COUNTER["m"],
                    COUNTER["k"],
                    COUNTER["l"],
                    COUNTER["n"],
                    buffer_elems=COUNTER["budget"],
                ),
            ]
        )
        assert report.errors == 0
        assert report.certified == 2
        discrepancies = report.discrepancies()
        assert len(discrepancies) == 1
        assert discrepancies[0]["healed"] is True
        summary = report.summary_dict()
        assert summary["certified"] == 2
        assert summary["discrepancies"] == 1
        assert "certification : certified=2 discrepancies=1" in (
            report.render_text()
        )
        json.dumps(summary)  # the whole summary stays serializable

    def test_certify_flag_attaches_certificate(self):
        engine = BatchEngine(EngineConfig(jobs=1))
        report = engine.run_batch(
            [intra_request(64, 32, 48, buffer_elems=1024, certify=True)]
        )
        (entry,) = report.entries
        certification = entry.record["result"]["certification"]
        assert certification["ok"] is True
        assert {c["name"] for c in certification["checks"]} >= {
            "feasibility",
            "cost_audit",
            "bound",
        }

    def test_apply_paranoid_rewrites_key(self):
        plain = intra_request(64, 32, 48, buffer_elems=1024)
        paranoid = apply_paranoid(plain)
        assert paranoid.param_dict["paranoid"] is True
        assert request_key(paranoid) != request_key(plain)
        # Idempotent: already-paranoid requests pass through untouched.
        assert apply_paranoid(paranoid) == paranoid

    def test_invalid_buffer_classified_permanent(self):
        engine = BatchEngine(EngineConfig(jobs=1))
        report = engine.run_batch(
            [intra_request(64, 32, 48, buffer_elems=-5)]
        )
        (entry,) = report.entries
        assert not entry.ok
        error = entry.record["error"]
        assert error["type"] == "InvalidWorkloadError"
        assert error["category"] == PERMANENT


# ----------------------------------------------------------------------
# CLI: repro certify
# ----------------------------------------------------------------------
class TestCertifyCli:
    def test_certify_known_good(self, capsys):
        rc = main(
            ["certify", "64", "32", "48", "--buffer-elems", "4096", "--paranoid"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimality_probe" in out

    def test_certify_catches_corruption(self, capsys):
        rc = main(
            [
                "certify", "64", "32", "48",
                "--buffer-elems", "4096", "--corrupt-ma", "7",
            ]
        )
        assert rc == 0  # rc 0 *because* the corruption was caught
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_certify_fused_heals_counterexample(self, capsys):
        rc = main(
            [
                "certify", "43", "2", "19", "--consumer-n", "23",
                "--buffer-elems", "173", "--no-cross", "--paranoid", "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["healed"] is True
        assert payload["discrepancy"]["certified_memory_access"] == 3936
