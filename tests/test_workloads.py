"""Tests for the transformer workload models (paper Table II)."""

import pytest

from repro.workloads import (
    BERT,
    LLAMA2,
    LLAMA2_SEQ_SWEEP,
    PAPER_MODELS,
    ModelConfig,
    attention_operators,
    build_layer_graph,
    ffn_operators,
    model_by_name,
    projection_operators,
    representative_matmuls,
)


class TestModelConfigs:
    def test_table2_values(self):
        rows = {model.name: model for model in PAPER_MODELS}
        assert rows["Bert"].heads == 12
        assert rows["Bert"].seq_len == 1024
        assert rows["Bert"].hidden == 768
        assert rows["GPT-2"].seq_len == 2048
        assert rows["Blenderbot"].hidden == 1024
        assert rows["XLM"].hidden == 2048
        assert rows["DeBERTa-v2"].heads == 24
        assert rows["LLaMA2"].seq_len == 4096
        assert rows["ALBERT"].heads == 64

    def test_seven_models(self):
        assert len(PAPER_MODELS) == 7

    def test_batch_16_everywhere(self):
        assert all(model.batch == 16 for model in PAPER_MODELS)

    def test_head_dim(self):
        assert BERT.head_dim == 64
        assert LLAMA2.head_dim == 128

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig("bad", heads=7, seq_len=128, hidden=100)

    def test_with_seq_len(self):
        longer = BERT.with_seq_len(4096)
        assert longer.seq_len == 4096
        assert longer.hidden == BERT.hidden

    def test_seq_sweep_range(self):
        assert LLAMA2_SEQ_SWEEP[0] == 256
        assert LLAMA2_SEQ_SWEEP[-1] == 16384

    def test_model_by_name(self):
        assert model_by_name("bert") is BERT
        with pytest.raises(KeyError):
            model_by_name("nope")


class TestOperatorGeneration:
    def test_attention_shapes(self):
        qk, sm, av = attention_operators(BERT)
        assert qk.dims == {"M": 1024, "K": 64, "L": 1024}
        assert av.dims == {"M": 1024, "K": 1024, "L": 64}
        assert qk.count == 16 * 12

    def test_attention_chain_links(self):
        qk, sm, av = attention_operators(BERT)
        assert sm.inputs[0] is qk.output
        assert av.inputs[0] is sm.output

    def test_projections_fold_batch(self):
        ops = projection_operators(BERT)
        assert all(op.dims["M"] == 16 * 1024 for op in ops)
        assert len(ops) == 4

    def test_ffn_chain(self):
        ffn1, ffn2 = ffn_operators(BERT)
        assert ffn1.dims["L"] == 4 * 768
        assert ffn2.inputs[0] is ffn1.output

    def test_layer_graph_structure(self):
        graph = build_layer_graph(BERT)
        assert len(graph) == 9
        chain_sets = {tuple(op.name for op in c) for c in graph.chains()}
        assert ("Bert.qk", "Bert.softmax", "Bert.av") in chain_sets
        assert ("Bert.ffn1", "Bert.ffn2") in chain_sets

    def test_layer_macs_formula(self):
        """Total MACs: 4 projections + attention + FFN."""
        graph = build_layer_graph(BERT)
        tokens = 16 * 1024
        h = 768
        s = 1024
        heads = 16 * 12
        expected = (
            4 * tokens * h * h
            + heads * (s * 64 * s + s * s * 64)
            + 2 * tokens * h * 4 * h
            + heads * s * s  # softmax points
        )
        assert graph.macs == expected

    def test_representative_matmuls_cover_shapes(self):
        ops = representative_matmuls(BERT)
        names = {op.name.split(".")[-1] for op in ops}
        assert names == {"proj", "qk", "av", "ffn1", "ffn2"}

    def test_graphs_scale_with_seq_len(self):
        short = build_layer_graph(LLAMA2.with_seq_len(256))
        long = build_layer_graph(LLAMA2.with_seq_len(4096))
        assert long.macs > short.macs
