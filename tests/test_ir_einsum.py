"""Tests for the einsum front end."""

import pytest

from repro.core import is_mm_like, optimize_generic, optimize_intra
from repro.ir import OperatorError, einsum_operator, matmul


class TestParsing:
    def test_matmul_spec(self):
        op = einsum_operator("mm", "mk,kl->ml", {"m": 64, "k": 32, "l": 48})
        assert op.dims == {"m": 64, "k": 32, "l": 48}
        assert op.reduction_dims == frozenset({"k"})
        assert is_mm_like(op)

    def test_batched_spec(self):
        op = einsum_operator(
            "bmm", "bmk,kl->bml", {"b": 4, "m": 8, "k": 6, "l": 5}
        )
        assert op.dims_of("bmm.in0") == ("b", "m", "k")
        assert op.dims_of("bmm.out") == ("b", "m", "l")
        assert op.reduction_dims == frozenset({"k"})

    def test_three_operand_contraction(self):
        op = einsum_operator(
            "c3", "ij,jk,kl->il", {"i": 8, "j": 6, "k": 5, "l": 7}
        )
        assert len(op.inputs) == 3
        assert op.reduction_dims == frozenset({"j", "k"})

    def test_missing_arrow(self):
        with pytest.raises(OperatorError, match="->"):
            einsum_operator("x", "mk,kl", {"m": 2, "k": 2, "l": 2})

    def test_missing_size(self):
        with pytest.raises(OperatorError, match="missing sizes"):
            einsum_operator("x", "mk,kl->ml", {"m": 2, "k": 2})

    def test_repeated_subscript_rejected(self):
        with pytest.raises(OperatorError, match="repeats"):
            einsum_operator("x", "mm->m", {"m": 4})

    def test_output_only_subscript_rejected(self):
        with pytest.raises(OperatorError, match="never appear"):
            einsum_operator("x", "mk->mz", {"m": 2, "k": 2, "z": 3})

    def test_non_alpha_rejected(self):
        with pytest.raises(OperatorError, match="letters"):
            einsum_operator("x", "m1,1l->ml", {"m": 2, "1": 2, "l": 2})


class TestOptimization:
    def test_einsum_matmul_matches_constructor(self):
        via_einsum = einsum_operator(
            "mm", "mk,kl->ml", {"m": 96, "k": 64, "l": 80}
        )
        via_ctor = matmul("mm", 96, 64, 80)
        for budget in (100, 1000, 10000):
            assert (
                optimize_intra(via_einsum, budget).memory_access
                == optimize_intra(via_ctor, budget).memory_access
            )

    def test_generic_path_for_higher_rank(self):
        op = einsum_operator(
            "bmm", "bmk,kl->bml", {"b": 4, "m": 16, "k": 12, "l": 20}
        )
        result = optimize_generic(op, 10**6)
        assert result.memory_access == op.ideal_memory_access()

    def test_count_passthrough(self):
        op = einsum_operator(
            "mm", "mk,kl->ml", {"m": 8, "k": 8, "l": 8}, count=5
        )
        assert op.macs == 5 * 512
