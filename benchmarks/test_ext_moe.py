"""Extension experiment: mixture-of-experts FFN blocks.

MoE replaces one big fusable FFN chain with many small ones (per expert).
The principles handle both ends: per-expert chains still fuse (their
intermediate is ``T_e x 4H``), and the regime classification shifts because
each expert sees fewer tokens.  Compared against the dense FFN at equal
token throughput.
"""

from repro.core import optimize_graph
from repro.experiments import format_table
from repro.ir import OperatorGraph, matmul
from repro.workloads import BERT, build_moe_ffn_graph

BUFFER = 512 * 1024


def dense_ffn_graph():
    tokens = BERT.batch * BERT.seq_len
    graph = OperatorGraph("dense-ffn")
    ffn1 = graph.add(matmul("ffn1", tokens, BERT.hidden, BERT.ffn_hidden))
    graph.add(matmul("ffn2", tokens, BERT.ffn_hidden, BERT.hidden, a=ffn1.output))
    return graph


def test_moe_vs_dense(benchmark):
    def run():
        rows = []
        dense = dense_ffn_graph()
        dense_plan = optimize_graph(dense, BUFFER)
        rows.append(
            [
                "dense FFN",
                dense.macs,
                dense_plan.memory_access,
                len(dense_plan.fused_segments),
            ]
        )
        for experts, top_k in ((4, 1), (8, 2), (16, 2), (64, 2)):
            graph = build_moe_ffn_graph(BERT, num_experts=experts, top_k=top_k)
            plan = optimize_graph(graph, BUFFER)
            rows.append(
                [
                    f"MoE {experts}x top{top_k}",
                    graph.macs,
                    plan.memory_access,
                    len(plan.fused_segments),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["block", "MACs", "optimized MA", "fused segments"],
            rows,
            title="Extension: MoE FFN blocks vs dense (512 KB buffer)",
        )
    )
    # Expert chains always fuse.
    assert all(row[3] >= 1 for row in rows)
    # Arithmetic intensity drops with expert count at fixed top_k: MA per
    # MAC grows monotonically across the 8/16/64-expert top-2 configs.
    top2 = [row for row in rows if "top2" in row[0]]
    intensity = [row[2] / row[1] for row in top2]
    assert intensity == sorted(intensity)
