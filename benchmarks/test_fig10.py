"""Regenerate paper Fig. 10: memory access + utilization, 7 models x 5
platforms, and the headline averages.

Paper: FuseCU saves 63.6% / 62.4% / 38.7% memory access and runs 1.33x /
1.25x / 1.14x faster than TPUv4i / Gemmini / Planaria; UnfCU saves 42.6% /
41.0% / 4.5%.  The reproduction checks direction and rough magnitude (our
platform-space encodings are reconstructions; see EXPERIMENTS.md).
"""

from repro.experiments import (
    PAPER_FUSECU_MA_SAVING,
    PAPER_FUSECU_SPEEDUP,
    PLATFORM_ORDER,
    render_fig10,
    run_fig10,
)


def test_fig10(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    print("\n" + render_fig10(result))
    headline = result.headline()

    # Direction: FuseCU saves against every baseline, on every model.
    for model in result.models:
        for platform in ("TPUv4i", "Gemmini", "Planaria", "UnfCU"):
            assert result.normalized_ma(model, "FuseCU") <= result.normalized_ma(
                model, platform
            ), (model, platform)

    # Magnitude: savings in the paper's ballpark (within ~20 points).
    for base, paper_value in PAPER_FUSECU_MA_SAVING.items():
        measured = headline["fusecu_ma_saving"][base]
        assert abs(measured - paper_value) < 0.20, (base, measured, paper_value)

    # Speedups: direction and rough magnitude.
    for base, paper_value in PAPER_FUSECU_SPEEDUP.items():
        measured = headline["fusecu_speedup"][base]
        assert measured > 1.0, (base, measured)
        assert abs(measured - paper_value) < 0.25, (base, measured, paper_value)

    # UnfCU captures the intra-operator share: between baselines and FuseCU.
    for base in ("TPUv4i", "Gemmini", "Planaria"):
        assert 0 <= headline["unfcu_ma_saving"][base] < headline[
            "fusecu_ma_saving"
        ][base]


def test_fig10_utilization_ordering(benchmark):
    """The line chart: FuseCU's utilization leads on every model."""
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    for model in result.models:
        fusecu_util = result.cell(model, "FuseCU").utilization
        for platform in PLATFORM_ORDER[:-1]:
            assert fusecu_util >= result.cell(model, platform).utilization
