"""Regenerate paper Fig. 11: LLaMA2 sensitivity to sequence length.

Paper: FuseCU is robust for short and long sequences, "with greater memory
access reduction observed for longer sequences" -- attention's S^2
intermediates grow quadratically while fusion keeps them on-chip.
"""

from repro.experiments import render_fig11, run_fig11


def test_fig11(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print("\n" + render_fig11(result))

    # The paper's stated trend: savings grow with sequence length.
    savings = [result.fusecu_saving(s) for s in result.seq_lens]
    assert savings == sorted(savings)
    assert savings[0] > 0  # robust even at the shortest sequence

    # FuseCU wins at every sequence length, against every platform.
    for seq_len in result.seq_lens:
        for platform in ("TPUv4i", "Gemmini", "Planaria", "UnfCU"):
            assert result.normalized_ma(seq_len, "FuseCU") <= result.normalized_ma(
                seq_len, platform
            )

    # Utilization stays high across the sweep.
    for seq_len in result.seq_lens:
        assert result.point(seq_len, "FuseCU").utilization > 0.9
