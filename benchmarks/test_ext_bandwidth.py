"""Extension experiment: sensitivity to on-chip bandwidth (roofline).

The paper fixes bandwidth at 1 TB/s.  This bench sweeps it: at high
bandwidth all platforms are compute-bound and FuseCU's *speedup* comes
from utilization alone; as bandwidth tightens, the memory-access savings
turn directly into speedup, so FuseCU's advantage grows -- quantifying
when the communication lower bound matters for performance.
"""

from repro.arch import MemorySpec, evaluate_graph, fusecu, tpuv4i
from repro.experiments import format_table
from repro.workloads import BERT, build_layer_graph

BANDWIDTHS_GBPS = (8000.0, 2000.0, 1000.0, 250.0, 62.5)


def test_bandwidth_sensitivity(benchmark):
    graph = build_layer_graph(BERT)

    def run():
        rows = []
        for bandwidth in BANDWIDTHS_GBPS:
            memory = MemorySpec(bandwidth_gbps=bandwidth)
            base = evaluate_graph(graph, tpuv4i(memory))
            fused = evaluate_graph(graph, fusecu(memory))
            rows.append(
                [
                    bandwidth,
                    round(fused.speedup_over(base), 3),
                    round(base.utilization, 3),
                    round(fused.utilization, 3),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "bandwidth (GB/s)",
                "FuseCU speedup vs TPUv4i",
                "TPUv4i utilization",
                "FuseCU utilization",
            ],
            rows,
            title="Extension: roofline sweep (BERT layer, 512 KB buffer)",
        )
    )
    speedups = [row[1] for row in rows]
    # Tighter bandwidth -> larger FuseCU advantage (monotone in the sweep).
    assert speedups == sorted(speedups)
    assert speedups[-1] > speedups[0]
    # FuseCU always at least as fast.
    assert all(speedup >= 1.0 for speedup in speedups)
