"""Ablation: fusion on/off and Principle 4's pattern claim.

* FuseCU vs UnfCU isolates the fusion contribution per model (the paper's
  UnfCU ablation).
* Cross-NRA fused patterns (Fig. 4 red arrows) never win the fused-space
  optimization -- the operative content of Principle 4.
"""

from repro.core import optimize_fused, optimize_graph
from repro.experiments import format_table
from repro.ir import matmul
from repro.workloads import PAPER_MODELS, build_layer_graph

BUFFER = 512 * 1024


def test_fusion_contribution_per_model(benchmark):
    def run():
        rows = []
        for model in PAPER_MODELS:
            graph = build_layer_graph(model)
            fused = optimize_graph(graph, BUFFER).memory_access
            unfused = optimize_graph(
                graph, BUFFER, enable_fusion=False
            ).memory_access
            rows.append(
                [model.name, unfused, fused, f"{1 - fused / unfused:.1%}"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["model", "unfused MA", "fused MA", "fusion saving"],
            rows,
            title="Ablation: graph-level fusion contribution (512 KB buffer)",
        )
    )
    for row in rows:
        assert row[2] < row[1], row  # fusion strictly reduces MA everywhere


def test_cross_nra_patterns_never_win(benchmark):
    """Principle 4 on transformer-class chains: the optimal fused dataflow
    always uses same-NRA modes.

    The shapes below are the paper's workload shapes (attention and FFN
    chains, where producer and consumer have comparable dimensions).  For
    *extremely* asymmetric chains the principle has whisker-margin
    exceptions -- quantified by ``test_cross_nra_exception_margin`` below
    and recorded in EXPERIMENTS.md.
    """

    shapes = [
        (256, 64, 256, 64),     # Blenderbot attention
        (1024, 64, 1024, 64),   # BERT attention
        (512, 512, 512, 512),   # square GEMM chain
        (128, 512, 128, 512),   # FFN-like
        (4096, 128, 4096, 128), # LLaMA2 attention
    ]
    budgets = (32 * 1024, 128 * 1024, 512 * 1024, 2 * 1024 * 1024)

    def run():
        winners = []
        for m, k, l, n in shapes:
            op1 = matmul("mm1", m, k, l)
            op2 = matmul("mm2", m, l, n, a=op1.output)
            for budget in budgets:
                result = optimize_fused([op1, op2], budget, include_cross=True)
                if result is not None:
                    winners.append(((m, k, l, n), budget, result.pattern))
        return winners

    winners = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(shape), budget // 1024, pattern.label, pattern.cross_nra]
        for shape, budget, pattern in winners
    ]
    print(
        "\n"
        + format_table(
            ["chain (M,K,L,N)", "buffer (KB)", "winning pattern", "cross-NRA?"],
            rows,
            title="Ablation: winning fused patterns (Principle 4 check)",
        )
    )
    assert winners
    assert not any(pattern.cross_nra for _s, _b, pattern in winners)


def test_cross_nra_exception_margin(benchmark):
    """Reproduction finding: on an extremely asymmetric chain (tiny N) a
    cross-NRA pattern can edge out the best same-NRA one -- but only by a
    sub-percent margin.  Principle 4 therefore costs at most ~1% even where
    it is not exactly optimal."""

    op1 = matmul("mm1", 1024, 1024, 1024)
    op2 = matmul("mm2", 1024, 1024, 16, a=op1.output)

    def run():
        margins = []
        for budget in (128 * 1024, 512 * 1024):
            with_cross = optimize_fused([op1, op2], budget, include_cross=True)
            same_only = optimize_fused([op1, op2], budget, include_cross=False)
            margins.append(
                (budget, with_cross.memory_access, same_only.memory_access)
            )
        return margins

    margins = benchmark.pedantic(run, rounds=1, iterations=1)
    for budget, best, same_nra in margins:
        gap = same_nra / best - 1.0
        print(
            f"\nBS={budget // 1024}KB: best={best} (cross allowed), "
            f"same-NRA only={same_nra} (+{gap:.2%})"
        )
        assert gap < 0.02  # Principle 4's worst-case cost stays tiny
