"""Ablation: fusion medium -- compute unit vs memory (paper Table I).

The paper positions FuseCU against Chimera/SET/FLAT/DAT by *where* fusion
happens: prior work buffers the intermediate in memory; FuseCU holds it in
the compute unit.  This bench quantifies the difference on transformer
chains at several buffer sizes: register-resident intermediates free
buffer capacity (larger tiles for the external tensors), while huge S x S
intermediates exceed the register file and fall back to the buffer.
"""

from repro.core import FusionMedium, optimize_fused
from repro.experiments import format_table
from repro.ir import matmul

REGISTERS = 128 * 128 * 4  # one accumulator per PE in the FuseCU group

CHAINS = {
    "ffn-like (768->3072->768, M=2048)": (2048, 768, 3072, 768),
    "attention-like (S=1024, d=64)": (1024, 64, 1024, 64),
    "square (512^3 chain)": (512, 512, 512, 512),
}


def test_fusion_medium(benchmark):
    def run():
        rows = []
        for name, (m, k, l, n) in CHAINS.items():
            op1 = matmul("mm1", m, k, l)
            op2 = matmul("mm2", m, l, n, a=op1.output)
            for budget_kb in (64, 512):
                budget = budget_kb * 1024
                memory_r = optimize_fused(
                    [op1, op2], budget, medium=FusionMedium.MEMORY
                )
                cu_r = optimize_fused(
                    [op1, op2],
                    budget,
                    medium=FusionMedium.COMPUTE_UNIT,
                    register_elems=REGISTERS,
                )
                best_r = optimize_fused(
                    [op1, op2],
                    budget,
                    medium=FusionMedium.BEST,
                    register_elems=REGISTERS,
                )
                rows.append(
                    [
                        name,
                        budget_kb,
                        memory_r.memory_access if memory_r else "-",
                        cu_r.memory_access if cu_r else "infeasible",
                        best_r.memory_access if best_r else "-",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "chain",
                "buffer (KB)",
                "memory-medium MA",
                "compute-unit MA",
                "best-of-both MA",
            ],
            rows,
            title="Ablation: fusion medium (paper Table I differentiator)",
        )
    )
    for row in rows:
        # BEST never loses to either concrete medium.
        values = [v for v in (row[2], row[3]) if isinstance(v, int)]
        if isinstance(row[4], int) and values:
            assert row[4] <= min(values)
