"""Extension experiment: the principles on convolution workloads.

The paper generalizes its principles to "other tensor operators"; this
bench applies them to im2col-lowered ResNet-50 layers, validating against
exhaustive search per layer and showing the buffer regimes sweep from
Single-NRA (spatial-heavy early layers) to Three-NRA (channel-heavy late
layers) at the 512 KB evaluation buffer.
"""

from repro.core import classify_buffer, optimize_intra
from repro.experiments import format_table
from repro.ir import conv2d_as_matmul
from repro.search import exhaustive_search
from repro.workloads import RESNET50_LAYERS

BUFFER = 512 * 1024


def test_resnet_layers(benchmark):
    def run():
        rows = []
        for name, shape in RESNET50_LAYERS.items():
            op = conv2d_as_matmul(name, shape)
            result = optimize_intra(op, BUFFER)
            searched = exhaustive_search(op, BUFFER)
            regime = classify_buffer(op, BUFFER).regime.value
            rows.append(
                [
                    name,
                    f"{shape.gemm_m}x{shape.gemm_k}x{shape.gemm_l}",
                    regime,
                    str(result.nra_class),
                    result.memory_access,
                    searched.memory_access,
                    result.memory_access <= searched.memory_access,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "layer",
                "GEMM (MxKxL)",
                "regime",
                "NRA class",
                "principle MA",
                "searched MA",
                "principle<=search",
            ],
            rows,
            title="Extension: principles on ResNet-50 conv layers (512 KB)",
        )
    )
    assert all(row[-1] for row in rows)
    regimes = {row[2] for row in rows}
    assert len(regimes) >= 2  # the stages genuinely sweep regimes
