"""Benchmark the functional simulators (the RTL stand-ins).

Confirms the cycle-driven models are fast enough for test-time use and
that the fused executions save both intermediate traffic and cycles over
the unfused two-pass reference -- the hardware-level counterpart of the
analytical fusion result.
"""

import numpy as np

from repro.arch import FuseCUArray, FuseCUConfig, SystolicArray


def test_systolic_os_throughput(benchmark):
    rng = np.random.default_rng(0)
    array = SystolicArray(32, 32)
    a = rng.normal(size=(32, 64))
    b = rng.normal(size=(64, 32))

    result, _stats = benchmark(array.run_os, a, b)
    assert np.allclose(result, a @ b)


def test_tile_fusion_vs_unfused(benchmark):
    rng = np.random.default_rng(1)
    fusecu = FuseCUArray(FuseCUConfig(n=32))
    a = rng.normal(size=(28, 24))
    b = rng.normal(size=(24, 30))
    d = rng.normal(size=(30, 20))

    fused = benchmark(fusecu.tile_fusion, a, b, d)
    unfused = fusecu.unfused_reference(a, b, d)
    print(
        f"\ntile fusion: cycles={fused.stats.cycles}, C traffic=0 | "
        f"unfused: cycles={unfused.stats.cycles}, "
        f"C traffic={unfused.intermediate_traffic}"
    )
    assert np.allclose(fused.result, (a @ b) @ d)
    assert fused.intermediate_traffic == 0
    assert fused.stats.cycles < unfused.stats.cycles


def test_column_fusion_pipeline(benchmark):
    rng = np.random.default_rng(2)
    fusecu = FuseCUArray(FuseCUConfig(n=32))
    a = rng.normal(size=(30, 16))
    b = rng.normal(size=(16, 28))
    d = rng.normal(size=(28, 18))

    fused = benchmark(fusecu.column_fusion, a, b, d)
    assert np.allclose(fused.result, (a @ b) @ d)
    assert fused.fused_on_chip
