"""Extension experiment: FuseCU's advantage vs buffer capacity.

Sweeps the on-chip buffer from 64 KB to 16 MB (around the paper's Fig. 9
range) and tracks FuseCU's MA saving over TPUv4i on a BERT layer.  Two
regimes emerge: at small buffers everything is redundant and flexible
tiling dominates; at huge buffers even the unfused dataflows approach
their ideals, so the remaining saving is exactly the intermediates that
only fusion can elide.
"""

from repro.arch import MemorySpec, evaluate_graph, fusecu, tpuv4i, unfcu
from repro.experiments import format_table
from repro.workloads import BERT, build_layer_graph

BUFFERS_KB = (64, 256, 1024, 4096, 16384)


def test_buffer_sensitivity(benchmark):
    graph = build_layer_graph(BERT)

    def run():
        rows = []
        for kb in BUFFERS_KB:
            memory = MemorySpec(buffer_bytes=kb * 1024)
            base = evaluate_graph(graph, tpuv4i(memory))
            mid = evaluate_graph(graph, unfcu(memory))
            top = evaluate_graph(graph, fusecu(memory))
            rows.append(
                [
                    kb,
                    base.total_memory_access,
                    mid.total_memory_access,
                    top.total_memory_access,
                    f"{1 - top.total_memory_access / base.total_memory_access:.1%}",
                    f"{1 - top.total_memory_access / mid.total_memory_access:.1%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "buffer (KB)",
                "TPUv4i MA",
                "UnfCU MA",
                "FuseCU MA",
                "FuseCU vs TPUv4i",
                "FuseCU vs UnfCU (pure fusion)",
            ],
            rows,
            title="Extension: buffer-capacity sweep (BERT layer)",
        )
    )
    # FuseCU monotone non-increasing in buffer, and never worse than UnfCU.
    fusecu_ma = [row[3] for row in rows]
    assert fusecu_ma == sorted(fusecu_ma, reverse=True)
    for row in rows:
        assert row[3] <= row[2] <= row[1]
    # The pure-fusion gap (vs UnfCU) persists even at the largest buffer:
    # intermediates can only be elided by fusing.
    final_gap = 1 - rows[-1][3] / rows[-1][2]
    assert final_gap > 0.1
