"""Benchmark-suite configuration.

Every module in this directory regenerates one paper artifact (a table or
figure) via pytest-benchmark::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the rendered rows/series alongside the timing data.
"""
