"""Extension experiment: decode-phase (KV-cache) sensitivity.

Complements Fig. 11: the paper sweeps prefill sequence length; serving also
runs the GEMV-shaped decode phase, where intermediates are 1 x context
vectors rather than S x S matrices.  Fusion still wins, but by less, and
the workload turns memory-bound -- a useful boundary for the model.
"""

from repro.arch import evaluate_graph, fusecu, tpuv4i
from repro.experiments import format_table
from repro.workloads import LLAMA2, build_decode_graph, build_layer_graph

CONTEXTS = (512, 2048, 8192)


def test_decode_sensitivity(benchmark):
    def run():
        rows = []
        for context in CONTEXTS:
            graph = build_decode_graph(LLAMA2, context)
            base = evaluate_graph(graph, tpuv4i())
            fused = evaluate_graph(graph, fusecu())
            memory_bound = sum(1 for s in fused.segments if s.memory_bound)
            rows.append(
                [
                    context,
                    base.total_memory_access,
                    fused.total_memory_access,
                    f"{1 - fused.total_memory_access / base.total_memory_access:.1%}",
                    f"{memory_bound}/{len(fused.segments)}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "context",
                "TPUv4i MA",
                "FuseCU MA",
                "FuseCU saving",
                "memory-bound segments",
            ],
            rows,
            title="Extension: LLaMA2 decode step vs KV-cache length",
        )
    )
    for row in rows:
        assert row[2] <= row[1]  # FuseCU never worse

    # Decode fusion saving < prefill fusion saving at the same context.
    prefill = build_layer_graph(LLAMA2.with_seq_len(2048))
    decode = build_decode_graph(LLAMA2, 2048)
    prefill_saving = 1 - (
        evaluate_graph(prefill, fusecu()).total_memory_access
        / evaluate_graph(prefill, tpuv4i()).total_memory_access
    )
    decode_saving = 1 - (
        evaluate_graph(decode, fusecu()).total_memory_access
        / evaluate_graph(decode, tpuv4i()).total_memory_access
    )
    print(
        f"\nfusion saving @2048: prefill {prefill_saving:.1%} vs decode "
        f"{decode_saving:.1%}"
    )
    assert decode_saving < prefill_saving
