"""Extension experiment: MA(BS) staircases with regime annotations.

The visual form of the paper's Sec. III-A4 classification: each operator's
communication-lower-bound curve, its Single->Two shift band and its
Three-NRA threshold, extracted as exact corner points via the inverse
queries.
"""

from repro.core import classify_buffer
from repro.experiments import render_sweep, run_sweep
from repro.ir import matmul

OPERATORS = [
    matmul("balanced", 512, 384, 448),
    matmul("attention-ish", 1024, 64, 1024),
    matmul("paper-example", 1024, 768, 768),
]


def test_sweep_curves(benchmark):
    curves = benchmark.pedantic(
        lambda: run_sweep(OPERATORS, max_points=16), rounds=1, iterations=1
    )
    print("\n" + render_sweep(curves))
    for curve, operator in zip(curves, OPERATORS):
        # Corners strictly improve and end at the ideal.
        ma_values = [point.memory_access for point in curve.points]
        assert ma_values == sorted(ma_values, reverse=True)
        assert ma_values[-1] == curve.ideal
        # The Three-NRA threshold sits in the large regime.
        report = classify_buffer(operator, curve.three_nra_at + 1)
        assert report.regime.value in ("medium", "large")
        # The staircase's final corner is at/above the smallest tensor
        # (paper: Three-NRA needs Tensor_min), within the strip allowance.
        assert curve.points[-1].buffer_elems >= curve.three_nra_at
