"""Ablation: one-shot principles vs searching-based DSE (cost & quality).

The paper's first motivation: searching-based optimization "is
time-consuming".  This bench quantifies the gap on a BERT-class operator --
wall-clock time per optimization call and cost-model evaluations -- while
asserting the principles never lose on quality.
"""

import pytest

from repro.core import optimize_intra
from repro.ir import matmul
from repro.search import GASettings, exhaustive_search, genetic_search

OP = matmul("bert_ffn1", 1024, 768, 3072)
BUFFER = 512 * 1024


def test_principle_one_shot(benchmark):
    result = benchmark(optimize_intra, OP, BUFFER)
    print(f"\nprinciples: MA={result.memory_access} ({result.label})")
    assert result.memory_access > 0


def test_exhaustive_search(benchmark):
    result = benchmark.pedantic(
        exhaustive_search, args=(OP, BUFFER), rounds=1, iterations=1
    )
    principled = optimize_intra(OP, BUFFER)
    print(
        f"\nexhaustive: MA={result.memory_access} after {result.evaluations} "
        f"evaluations (principles: MA={principled.memory_access})"
    )
    assert principled.memory_access <= result.memory_access
    assert result.evaluations > 1000  # the paper's "time-consuming" point


def test_genetic_search(benchmark):
    settings = GASettings(population=48, generations=40)
    result = benchmark.pedantic(
        genetic_search, args=(OP, BUFFER, settings), rounds=1, iterations=1
    )
    principled = optimize_intra(OP, BUFFER)
    print(
        f"\ngenetic: MA={result.memory_access} after {result.evaluations} "
        f"evaluations (principles: MA={principled.memory_access})"
    )
    assert principled.memory_access <= result.memory_access
    assert result.evaluations > 1000


def test_branch_and_bound_certification(benchmark):
    """The exact (provably optimal) comparator: branch and bound over loop
    orders x trip counts.  The principles match it exactly -- one-shot
    construction achieves the global optimum of the modeled space."""
    from repro.search import branch_and_bound_search

    result = benchmark.pedantic(
        branch_and_bound_search, args=(OP, BUFFER), rounds=1, iterations=1
    )
    principled = optimize_intra(OP, BUFFER)
    print(
        f"\nbranch-and-bound (exact): MA={result.memory_access} after "
        f"{result.evaluations} nodes (principles: MA="
        f"{principled.memory_access})"
    )
    assert principled.memory_access == result.memory_access
