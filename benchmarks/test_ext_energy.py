"""Extension experiment: energy decomposition across platforms.

Not a paper figure -- the paper motivates dataflow optimization with memory
energy ("a key factor in the energy consumption"); this bench quantifies
how the Fig. 10 memory-access savings translate into total-energy savings
at standard DRAM/SRAM/MAC cost ratios.
"""

from repro.arch import ALL_PLATFORMS, energy_of, evaluate_graph
from repro.experiments import format_table
from repro.workloads import PAPER_MODELS, build_layer_graph


def test_energy_across_platforms(benchmark):
    def run():
        rows = []
        for model in PAPER_MODELS:
            graph = build_layer_graph(model)
            reports = {
                factory().name: energy_of(evaluate_graph(graph, factory()))
                for factory in ALL_PLATFORMS
            }
            baseline = reports["TPUv4i"]
            rows.append(
                [
                    model.name,
                    round(baseline.total_mj, 3),
                    f"{baseline.dram_share:.0%}",
                    round(reports["FuseCU"].total_mj, 3),
                    f"{reports['FuseCU'].dram_share:.0%}",
                    f"{reports['FuseCU'].saving_over(baseline):.1%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "model",
                "TPUv4i mJ",
                "TPUv4i DRAM share",
                "FuseCU mJ",
                "FuseCU DRAM share",
                "energy saving",
            ],
            rows,
            title="Extension: energy per layer (DRAM 20 pJ/elem, MAC 0.25 pJ)",
        )
    )
    for row in rows:
        assert row[3] < row[1]  # FuseCU saves energy on every model
