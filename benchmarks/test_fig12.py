"""Regenerate paper Fig. 12: area breakdown and overheads at 28 nm.

Paper headlines: +12.0% over TPUv4i (dominated by XS PE MUXes); resize
interconnect + fusion control < 0.1%; Planaria's interconnect 12.6%.
"""

import pytest

from repro.experiments import render_fig12, run_fig12


def test_fig12(benchmark):
    result = benchmark(run_fig12)
    print("\n" + render_fig12(result))
    assert result.fusecu_overhead == pytest.approx(0.12, abs=0.01)
    assert result.interconnect_and_control_share < 0.001
    assert result.planaria_overhead == pytest.approx(0.126, abs=0.01)

    fusecu = result.breakdown("FuseCU")
    # Base datapath (multipliers + adders + accumulators) dominates.
    datapath = sum(
        component.gate_equivalents
        for component in fusecu.components
        if component.name in ("multipliers", "adders", "accumulators")
    )
    assert datapath / fusecu.total_ge > 0.7
