"""Extension experiment: fusion in the training step.

Training triples the GEMMs and adds a *backward* fusion chain (the
input-gradient GEMMs); this bench shows the planner fuses both directions
and measures the training-step traffic per platform.
"""

from repro.core import optimize_graph
from repro.experiments import format_table
from repro.workloads import BERT, XLM, build_ffn_training_graph

BUFFER = 512 * 1024


def test_training_step_fusion(benchmark):
    def run():
        rows = []
        for model in (BERT, XLM):
            graph = build_ffn_training_graph(model)
            fused = optimize_graph(graph, BUFFER)
            unfused = optimize_graph(graph, BUFFER, enable_fusion=False)
            chains = sorted(
                tuple(op.name.split(".")[-1] for op in segment.ops)
                for segment in fused.fused_segments
            )
            rows.append(
                [
                    model.name,
                    graph.macs,
                    unfused.memory_access,
                    fused.memory_access,
                    f"{1 - fused.memory_access / unfused.memory_access:.1%}",
                    "; ".join("+".join(chain) for chain in chains),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "model",
                "MACs",
                "unfused MA",
                "fused MA",
                "saving",
                "fused chains",
            ],
            rows,
            title="Extension: FFN training step (fwd + dgrad + wgrad)",
        )
    )
    for row in rows:
        assert row[3] < row[2]  # fusion helps training too
        # Both the forward and the input-gradient chains fuse.
        assert "fwd1+fwd2" in row[5]
        assert "dgrad2+dgrad1" in row[5]
