"""Ablation: adaptive array shapes (square/narrow/wide) vs fixed square.

Sec. IV-B's argument for CU recombination: untiled dimensions up to 2N need
non-square arrays or PEs idle.  This bench measures utilization of the
attention head shapes (d_h = 64 or 128 against S up to 16K) under the fixed
128x128 array, the FuseCU recombinations, and Planaria-style fission, plus
the double-buffered vs serialized fill model.
"""

from repro.arch import fill_efficiency, spatial_efficiency
from repro.arch.accelerators import _fixed_shapes, _fusecu_shapes, _planaria_shapes
from repro.dataflow import ArrayShape
from repro.experiments import format_table

HEAD_TILES = [
    (64, 1024),   # BERT-class QK^T weight tile
    (64, 2048),   # GPT-2
    (128, 4096),  # LLaMA2
    (64, 64),     # per-head square remnant
    (256, 256),   # recombined 2N square
]


def test_shape_utilization(benchmark):
    def run():
        rows = []
        for dims in HEAD_TILES:
            fixed = spatial_efficiency(dims, _fixed_shapes())[1]
            fusecu = spatial_efficiency(dims, _fusecu_shapes())[1]
            fission = spatial_efficiency(dims, _planaria_shapes())[1]
            rows.append([f"{dims[0]}x{dims[1]}", fixed, fusecu, fission])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["stationary tile", "fixed 128x128", "FuseCU shapes", "fission"],
            [[r[0]] + [round(v, 3) for v in r[1:]] for r in rows],
            title="Ablation: spatial utilization vs array-shape flexibility",
        )
    )
    for _name, fixed, fusecu, fission in rows:
        assert fusecu >= fixed  # recombination never hurts
        assert fission >= fusecu - 1e-9  # fission is the superset

    # A 64-wide head wastes half of any 128-granular array: CU
    # recombination only composes UP (to 2N), so FuseCU recovers this via
    # *fusion* (the fused attention segment's stationary tile is the SxS
    # intermediate, not the 64-wide operand) while Planaria needs fission.
    assert rows[0][1] == 0.5
    assert rows[0][2] == 0.5
    assert rows[0][3] == 1.0
    # The recombined 2N x 2N square maps perfectly on FuseCU shapes.
    assert rows[4][2] == 1.0


def test_fill_overlap_model(benchmark):
    """Double-buffered stationary loads vs naive serialized fills."""

    def run():
        rows = []
        shape = ArrayShape(128, 128)
        for stream in (64, 256, 1024, 4096):
            rows.append([stream, round(fill_efficiency(shape, stream), 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["stream length", "serialized fill efficiency"],
            rows,
            title="Ablation: fill amortization without double buffering",
        )
    )
    efficiencies = [row[1] for row in rows]
    assert efficiencies == sorted(efficiencies)  # longer streams amortize
    assert efficiencies[0] == 0.2  # 64/(64+256): short streams pay dearly
