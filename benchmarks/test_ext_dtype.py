"""Extension experiment: element width (quantization) sensitivity.

The paper's buffer arithmetic is element-denominated (int8).  Wider
elements shrink the buffer's *element* capacity: fp16 halves it, fp32
quarters it, pushing operators down the regime ladder and raising the
communication lower bound -- one more reason quantized inference wins.
"""

from repro.arch import MemorySpec, evaluate_graph, fusecu, tpuv4i
from repro.core import classify_buffer, optimize_intra
from repro.experiments import format_table
from repro.ir import matmul
from repro.workloads import BERT, build_layer_graph

DTYPES = {"int8": 1, "fp16": 2, "fp32": 4}


def test_dtype_regimes(benchmark):
    """Per-operator: wider elements demote the regime and raise MA."""
    op = matmul("bert_mm", 1024, 768, 768)

    def run():
        rows = []
        for name, width in DTYPES.items():
            buffer_elems = 512 * 1024 // width
            regime = classify_buffer(op, buffer_elems).regime.value
            result = optimize_intra(op, buffer_elems)
            rows.append(
                [
                    name,
                    buffer_elems,
                    regime,
                    str(result.nra_class),
                    result.memory_access,
                    result.memory_access * width,  # bytes moved
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "dtype",
                "buffer (elems)",
                "regime",
                "NRA",
                "MA (elems)",
                "MA (bytes)",
            ],
            rows,
            title="Extension: element width vs regime (512 KB buffer)",
        )
    )
    element_ma = [row[4] for row in rows]
    byte_ma = [row[5] for row in rows]
    assert element_ma == sorted(element_ma)  # wider -> more element traffic
    assert byte_ma == sorted(byte_ma)        # and strictly more bytes


def test_dtype_platform_gap(benchmark):
    """FuseCU's MA saving persists across element widths."""
    graph = build_layer_graph(BERT)

    def run():
        rows = []
        for name, width in DTYPES.items():
            memory = MemorySpec(buffer_bytes=512 * 1024, dtype_bytes=width)
            base = evaluate_graph(graph, tpuv4i(memory))
            fused = evaluate_graph(graph, fusecu(memory))
            rows.append(
                [
                    name,
                    base.total_memory_access,
                    fused.total_memory_access,
                    f"{1 - fused.total_memory_access / base.total_memory_access:.1%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["dtype", "TPUv4i MA", "FuseCU MA", "saving"],
            rows,
            title="Extension: FuseCU saving vs element width (BERT layer)",
        )
    )
    for row in rows:
        assert row[2] < row[1]
