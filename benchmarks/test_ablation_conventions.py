"""Ablation: partial-sum accounting convention (DESIGN.md call-out).

The paper counts one access per element per pass for spilled output partial
sums (its Eq. 1 charges ``C`` exactly ``ML``); some simulators charge
read+write per spilled pass.  This bench quantifies how the choice shifts
absolute MA and confirms it does not change the optimizer's *decisions*
(chosen NRA class per operator, profitable fusions).
"""

from repro.core import optimize_graph, optimize_intra
from repro.dataflow import PartialSumConvention
from repro.experiments import format_table
from repro.ir import matmul
from repro.workloads import BERT, build_layer_graph, representative_matmuls

BUFFER = 512 * 1024


def test_convention_shift(benchmark):
    def run():
        rows = []
        for op in representative_matmuls(BERT):
            single = optimize_intra(op, BUFFER, PartialSumConvention.SINGLE)
            rw = optimize_intra(op, BUFFER, PartialSumConvention.READ_WRITE)
            rows.append(
                [
                    op.name,
                    single.memory_access,
                    rw.memory_access,
                    str(single.nra_class),
                    str(rw.nra_class),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["operator", "MA (single)", "MA (read+write)", "class (single)",
             "class (rw)"],
            rows,
            title="Ablation: partial-sum convention",
        )
    )
    for row in rows:
        assert row[2] >= row[1]  # read+write never cheaper
        assert row[3] == row[4]  # chosen NRA class unchanged


def test_convention_graph_level(benchmark):
    graph = build_layer_graph(BERT)

    def run():
        single = optimize_graph(
            graph, BUFFER, convention=PartialSumConvention.SINGLE
        )
        rw = optimize_graph(
            graph, BUFFER, convention=PartialSumConvention.READ_WRITE
        )
        return single, rw

    single, rw = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ngraph MA: single={single.memory_access}, "
        f"read+write={rw.memory_access} "
        f"(+{rw.memory_access / single.memory_access - 1:.1%})"
    )
    assert rw.memory_access >= single.memory_access
    # The attention chain fuses under either convention; the FFN chain is a
    # borderline fusion that the read+write convention can flip (its fused
    # nest spills the second output's partial sums) -- see EXPERIMENTS.md.
    fused_single = {tuple(op.name for op in s.ops) for s in single.fused_segments}
    fused_rw = {tuple(op.name for op in s.ops) for s in rw.fused_segments}
    attention = ("Bert.qk", "Bert.softmax", "Bert.av")
    assert attention in fused_single
    assert attention in fused_rw
