"""Regenerate paper Tables I-III."""

from repro.experiments import (
    TABLE1_ROWS,
    table1,
    table2,
    table2_rows,
    table3,
    table3_rows,
)


def test_table1(benchmark):
    """Table I: summary of SOTA dataflow optimizers."""
    text = benchmark(table1)
    print("\n" + text)
    assert TABLE1_ROWS[-1]["Optimization scheme"] == "principle-based"


def test_table2(benchmark):
    """Table II: transformer model parameters."""
    text = benchmark(table2)
    print("\n" + text)
    rows = table2_rows()
    assert len(rows) == 7
    assert {row["Model"] for row in rows} == {
        "Bert",
        "GPT-2",
        "Blenderbot",
        "XLM",
        "DeBERTa-v2",
        "LLaMA2",
        "ALBERT",
    }


def test_table3(benchmark):
    """Table III: spatial architecture attributes."""
    text = benchmark(table3)
    print("\n" + text)
    rows = {row["Platform"]: row for row in table3_rows()}
    assert rows["FuseCU"]["Tensor Fusion"] == "yes"
    assert rows["TPUv4i"]["Tensor Fusion"] == "no"
    assert rows["Planaria"]["Tiling Flex."] == "high"
