"""Extension experiment: the two-level hierarchy and the 2N bound.

Paper Sec. IV-B applies the principles at the register level (BS = N x N)
to derive FuseCU's sizing rule: untiled dimensions only pay off below 2N.
This bench runs the composed DRAM<->buffer<->register analysis on the BERT
layer shapes and verifies the realized register-level dataflows obey the
bound.
"""

from repro.core import (
    optimize_two_level,
    untiling_is_optimal_at_registers,
)
from repro.dataflow import NRAClass
from repro.experiments import format_table
from repro.workloads import BERT, representative_matmuls

BUFFER = 512 * 1024
ARRAY_N = 128
REGISTERS = ARRAY_N * ARRAY_N


def test_two_level_hierarchy(benchmark):
    def run():
        rows = []
        for op in representative_matmuls(BERT):
            result = optimize_two_level(op, BUFFER, REGISTERS)
            tile = result.inner.operator
            d_min = min(tile.dims.values())
            rows.append(
                [
                    op.name,
                    result.dram_traffic,
                    result.buffer_traffic,
                    f"{tile.dims['M']}x{tile.dims['K']}x{tile.dims['L']}",
                    str(result.inner.nra_class),
                    d_min,
                    untiling_is_optimal_at_registers(d_min, ARRAY_N),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "operator",
                "DRAM traffic",
                "buffer traffic",
                "buffer tile",
                "register NRA",
                "tile Dmin",
                "Dmin < 2N",
            ],
            rows,
            title="Extension: two-level hierarchy (512 KB buffer, 128x128 regs)",
        )
    )
    for row in rows:
        # Sec. IV-B consistency: the register level untiles (Two/Three-NRA)
        # exactly when the tile's smallest dim is under 2N.
        untiles = row[4] in (str(NRAClass.TWO), str(NRAClass.THREE))
        assert untiles == row[6], row
        # Reuse shrinks up the hierarchy: register traffic >= DRAM traffic.
        assert row[2] >= row[1]
