"""Regenerate paper Fig. 9: principles vs searching-based DSE.

Paper claim: the principle-optimized dataflow matches the searched one at
every buffer size, occasionally beating it (the genetic algorithm "does not
guarantee global optimization").  Reproduced as: principle MA <= exhaustive
MA and principle MA <= genetic MA for every (operator, buffer size) sample
over the 32 KB - 32 MB sweep.
"""

from repro.arch import PAPER_BUFFER_SWEEP_BYTES
from repro.experiments import render_fig9, run_fig9
from repro.search import GASettings

#: Thinned sweep (every other point) keeps the bench under a minute while
#: spanning the paper's full 32 KB - 32 MB range.
SWEEP = PAPER_BUFFER_SWEEP_BYTES[::2]
GA = GASettings(population=32, generations=24)


def test_fig9(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig9(buffer_sweep_bytes=SWEEP, ga_settings=GA),
        rounds=1,
        iterations=1,
    )
    print("\n" + render_fig9(points))
    violations = [p for p in points if not p.principle_at_most_search]
    assert not violations, violations
    # At large buffers everything reaches the ideal (normalized 1.0).
    final = [p for p in points if p.buffer_bytes == SWEEP[-1]]
    assert all(p.principle_normalized == 1.0 for p in final)


def test_fig9_fused_pairs(benchmark):
    """The inter-operator side: principle-fused vs searched-fused."""
    from repro.core import optimize_fused
    from repro.ir import matmul
    from repro.search import exhaustive_fused_search

    def run():
        results = []
        op1 = matmul("mm1", 256, 64, 256)
        op2 = matmul("mm2", 256, 256, 64, a=op1.output)
        for buffer_bytes in (32 * 1024, 128 * 1024, 512 * 1024):
            principled = optimize_fused([op1, op2], buffer_bytes)
            searched = exhaustive_fused_search([op1, op2], buffer_bytes)
            results.append((buffer_bytes, principled, searched))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for buffer_bytes, principled, searched in results:
        print(
            f"BS={buffer_bytes // 1024}KB: principle-fused MA="
            f"{principled.memory_access if principled else None}, "
            f"searched-fused MA={searched.memory_access if searched else None}"
        )
        if searched is not None:
            assert principled is not None
            assert principled.memory_access <= searched.memory_access
