"""Synthesis experiment: what a percent of area buys in memory traffic.

Combines Fig. 10 (MA savings) with Fig. 12 (area overheads) into the
efficiency frontier the paper argues FuseCU sits on: the XS MUXes and
inter-CU wires cost ~12% area and buy ~57% of the traffic (and all of the
fusion capability), while Planaria's 12.6% interconnect buys roughly half
the traffic reduction and no fusion.
"""

from repro.arch import (
    fusecu_area,
    gemmini_area,
    planaria_area,
    tpuv4i_area,
    unfcu_area,
)
from repro.experiments import format_table, run_fig10

AREAS = {
    "TPUv4i": tpuv4i_area,
    "Gemmini": gemmini_area,
    "Planaria": planaria_area,
    "UnfCU": unfcu_area,
    "FuseCU": fusecu_area,
}


def test_cost_of_flexibility(benchmark):
    def run():
        fig10 = run_fig10()
        baseline_area = tpuv4i_area()
        rows = []
        for platform, area_factory in AREAS.items():
            overhead = area_factory().overhead_over(baseline_area)
            saving = (
                fig10.ma_saving(platform, "TPUv4i") if platform != "TPUv4i" else 0.0
            )
            speedup = (
                fig10.speedup(platform, "TPUv4i") if platform != "TPUv4i" else 1.0
            )
            leverage = saving / overhead if overhead > 0 else float("nan")
            rows.append(
                [
                    platform,
                    f"{overhead:.1%}",
                    f"{saving:.1%}",
                    f"{speedup:.2f}x",
                    "-" if overhead == 0 else f"{leverage:.1f}",
                ]
            )
        return rows, fig10

    rows, fig10 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            [
                "platform",
                "area overhead",
                "avg MA saving vs TPUv4i",
                "avg speedup",
                "saving per % area",
            ],
            rows,
            title="Synthesis: area overhead vs traffic saving (7-model avg)",
        )
    )
    by_name = {row[0]: row for row in rows}
    # FuseCU and Planaria cost roughly the same area...
    fusecu_overhead = fusecu_area().overhead_over(tpuv4i_area())
    planaria_overhead = planaria_area().overhead_over(tpuv4i_area())
    assert abs(fusecu_overhead - planaria_overhead) < 0.02
    # ...but FuseCU buys meaningfully more traffic reduction (the paper's
    # efficiency argument for compute-unit fusion).
    assert fig10.ma_saving("FuseCU", "TPUv4i") > fig10.ma_saving(
        "Planaria", "TPUv4i"
    ) + 0.1
