"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot run the PEP 517
editable-install path; ``pip install -e . --no-build-isolation
--no-use-pep517`` uses this shim instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
